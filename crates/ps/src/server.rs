//! One parameter server: a memory-metered, typed partition store behind a
//! network service port.

use psgraph_sim::sync::RwLock;
use psgraph_net::{NodeId, ServicePort};
use psgraph_sim::{FxHashMap, MemoryMeter, SimTime};
use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::error::{PsError, Result};

struct StoredPartition {
    data: Box<dyn Any + Send + Sync>,
    bytes: u64,
    /// Bumped on every write (insert or mutable access). Snapshot delta
    /// export compares these against a base manifest to find the
    /// partitions that changed.
    version: u64,
}

/// A PS server node.
pub struct PsServer {
    id: usize,
    port: ServicePort,
    memory: MemoryMeter,
    alive: AtomicBool,
    /// Incarnation number, bumped on every [`PsServer::kill`]. Folded into
    /// the version base of partitions created after a restart so a
    /// recovered partition's version can never coincide with a pre-crash
    /// version recorded in a snapshot manifest — the delta writer's
    /// "version differs ⇒ dirty" check stays sound across crashes.
    epoch: AtomicU64,
    store: RwLock<FxHashMap<(String, usize), StoredPartition>>,
}

impl std::fmt::Debug for PsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PsServer")
            .field("id", &self.id)
            .field("alive", &self.is_alive())
            .field("partitions", &self.store.read().len())
            .finish()
    }
}

impl PsServer {
    pub fn new(id: usize, memory_budget: u64) -> Self {
        PsServer {
            id,
            port: ServicePort::new(NodeId::Server(id)),
            memory: MemoryMeter::new(format!("ps-server-{id}"), memory_budget),
            alive: AtomicBool::new(true),
            epoch: AtomicU64::new(0),
            store: RwLock::default(),
        }
    }

    pub fn id(&self) -> usize {
        self.id
    }

    pub fn port(&self) -> &ServicePort {
        &self.port
    }

    pub fn memory(&self) -> &MemoryMeter {
        &self.memory
    }

    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Fail the caller if this server is down.
    pub fn ensure_alive(&self) -> Result<()> {
        if self.is_alive() {
            Ok(())
        } else {
            Err(PsError::ServerDown { id: self.id })
        }
    }

    /// Kill: all in-memory partitions and accounting are lost.
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.store.write().clear();
        self.memory.clear();
    }

    /// Current incarnation (0 until the first kill).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Restart at simulated time `t` with an empty store (recovery
    /// re-populates it from checkpoints).
    pub fn restart(&self, t: SimTime) {
        self.port.reset(t);
        self.alive.store(true, Ordering::Release);
    }

    /// Create or replace a partition.
    pub fn insert<T: Send + Sync + 'static>(
        &self,
        name: &str,
        partition: usize,
        value: T,
        bytes: u64,
    ) -> Result<()> {
        self.ensure_alive()?;
        let mut store = self.store.write();
        let key = (name.to_string(), partition);
        // Fresh partitions (e.g. restored after a crash wiped the store)
        // start their version count in the current epoch's range; replaced
        // ones continue their own count.
        let mut version = self.epoch.load(Ordering::Acquire) << 32;
        if let Some(old) = store.remove(&key) {
            self.memory.free(old.bytes);
            version = old.version;
        }
        self.memory.alloc(bytes)?;
        store.insert(key, StoredPartition { data: Box::new(value), bytes, version: version + 1 });
        Ok(())
    }

    /// Read-only access to a partition.
    pub fn get<T: 'static, R>(
        &self,
        name: &str,
        partition: usize,
        f: impl FnOnce(&T) -> R,
    ) -> Result<R> {
        self.ensure_alive()?;
        let store = self.store.read();
        let part = store
            .get(&(name.to_string(), partition))
            .ok_or_else(|| PsError::NotFound(format!("{name}[{partition}]")))?;
        let typed = part
            .data
            .downcast_ref::<T>()
            .ok_or_else(|| PsError::TypeMismatch { name: name.to_string() })?;
        Ok(f(typed))
    }

    /// Mutable access; the closure must not change the partition's
    /// footprint (use [`PsServer::update_resize`] if it can).
    pub fn update<T: 'static, R>(
        &self,
        name: &str,
        partition: usize,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R> {
        self.update_resize(name, partition, |t, bytes| (f(t), bytes))
    }

    /// Mutable access where the closure may grow/shrink the partition: it
    /// receives the current charged bytes and returns the new footprint.
    pub fn update_resize<T: 'static, R>(
        &self,
        name: &str,
        partition: usize,
        f: impl FnOnce(&mut T, u64) -> (R, u64),
    ) -> Result<R> {
        self.ensure_alive()?;
        let mut store = self.store.write();
        let part = store
            .get_mut(&(name.to_string(), partition))
            .ok_or_else(|| PsError::NotFound(format!("{name}[{partition}]")))?;
        let old_bytes = part.bytes;
        let typed = part
            .data
            .downcast_mut::<T>()
            .ok_or_else(|| PsError::TypeMismatch { name: name.to_string() })?;
        let (r, new_bytes) = f(typed, old_bytes);
        if new_bytes > old_bytes {
            self.memory.alloc(new_bytes - old_bytes)?;
        } else {
            self.memory.free(old_bytes - new_bytes);
        }
        part.bytes = new_bytes;
        part.version += 1;
        Ok(r)
    }

    /// Write version of a partition (see [`StoredPartition::version`]).
    pub fn version(&self, name: &str, partition: usize) -> Result<u64> {
        self.ensure_alive()?;
        self.store
            .read()
            .get(&(name.to_string(), partition))
            .map(|p| p.version)
            .ok_or_else(|| PsError::NotFound(format!("{name}[{partition}]")))
    }

    /// Whether a partition exists.
    pub fn contains(&self, name: &str, partition: usize) -> bool {
        self.store.read().contains_key(&(name.to_string(), partition))
    }

    /// Drop a partition, releasing its memory. Returns whether it existed.
    pub fn remove(&self, name: &str, partition: usize) -> bool {
        let mut store = self.store.write();
        if let Some(old) = store.remove(&(name.to_string(), partition)) {
            self.memory.free(old.bytes);
            true
        } else {
            false
        }
    }

    /// Drop every partition of a named object.
    pub fn remove_object(&self, name: &str) {
        let mut store = self.store.write();
        let keys: Vec<_> = store.keys().filter(|(n, _)| n == name).cloned().collect();
        for k in keys {
            if let Some(old) = store.remove(&k) {
                self.memory.free(old.bytes);
            }
        }
    }

    /// Number of stored partitions (diagnostics).
    pub fn partition_count(&self) -> usize {
        self.store.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_update_roundtrip() {
        let s = PsServer::new(0, 1 << 20);
        s.insert("v", 0, vec![1.0f64, 2.0], 16).unwrap();
        let sum = s.get("v", 0, |v: &Vec<f64>| v.iter().sum::<f64>()).unwrap();
        assert_eq!(sum, 3.0);
        s.update("v", 0, |v: &mut Vec<f64>| v[0] = 10.0).unwrap();
        let first = s.get("v", 0, |v: &Vec<f64>| v[0]).unwrap();
        assert_eq!(first, 10.0);
    }

    #[test]
    fn get_missing_partition_not_found() {
        let s = PsServer::new(0, 1 << 20);
        let err = s.get("nope", 0, |_: &Vec<f64>| ()).unwrap_err();
        assert!(matches!(err, PsError::NotFound(_)));
    }

    #[test]
    fn wrong_type_is_type_mismatch() {
        let s = PsServer::new(0, 1 << 20);
        s.insert("v", 0, vec![1.0f64], 8).unwrap();
        let err = s.get("v", 0, |_: &Vec<u64>| ()).unwrap_err();
        assert!(matches!(err, PsError::TypeMismatch { .. }));
    }

    #[test]
    fn memory_accounting_on_insert_replace_remove() {
        let s = PsServer::new(0, 1000);
        s.insert("a", 0, (), 400).unwrap();
        assert_eq!(s.memory().in_use(), 400);
        s.insert("a", 0, (), 300).unwrap(); // replace frees old
        assert_eq!(s.memory().in_use(), 300);
        assert!(s.remove("a", 0));
        assert_eq!(s.memory().in_use(), 0);
        assert!(!s.remove("a", 0));
    }

    #[test]
    fn oom_on_budget_exceeded() {
        let s = PsServer::new(0, 100);
        let err = s.insert("a", 0, (), 200).unwrap_err();
        assert!(matches!(err, PsError::Oom(_)));
        assert_eq!(s.memory().in_use(), 0);
    }

    #[test]
    fn update_resize_adjusts_accounting() {
        let s = PsServer::new(0, 1000);
        s.insert("m", 0, Vec::<u64>::new(), 100).unwrap();
        s.update_resize("m", 0, |v: &mut Vec<u64>, _old| {
            v.push(7);
            ((), 500)
        })
        .unwrap();
        assert_eq!(s.memory().in_use(), 500);
        s.update_resize("m", 0, |_: &mut Vec<u64>, _old| ((), 50)).unwrap();
        assert_eq!(s.memory().in_use(), 50);
    }

    #[test]
    fn update_resize_oom_rejects() {
        let s = PsServer::new(0, 100);
        s.insert("m", 0, (), 80).unwrap();
        let err = s.update_resize("m", 0, |_: &mut (), _| ((), 500)).unwrap_err();
        assert!(matches!(err, PsError::Oom(_)));
    }

    #[test]
    fn kill_clears_everything_and_blocks_access() {
        let s = PsServer::new(3, 1000);
        s.insert("v", 0, 1u64, 8).unwrap();
        s.kill();
        assert!(!s.is_alive());
        assert_eq!(s.memory().in_use(), 0);
        assert!(matches!(
            s.get("v", 0, |_: &u64| ()),
            Err(PsError::ServerDown { id: 3 })
        ));
        assert!(matches!(s.insert("v", 0, 1u64, 8), Err(PsError::ServerDown { .. })));
        s.restart(SimTime::from_secs(5));
        assert!(s.is_alive());
        // Store is empty after restart.
        assert!(matches!(s.get("v", 0, |_: &u64| ()), Err(PsError::NotFound(_))));
    }

    #[test]
    fn versions_count_writes_not_reads() {
        let s = PsServer::new(0, 1 << 20);
        s.insert("v", 0, vec![0.0f64; 4], 32).unwrap();
        assert_eq!(s.version("v", 0).unwrap(), 1);
        let _ = s.get("v", 0, |v: &Vec<f64>| v.len()).unwrap();
        assert_eq!(s.version("v", 0).unwrap(), 1, "reads do not bump");
        s.update("v", 0, |v: &mut Vec<f64>| v[0] = 1.0).unwrap();
        assert_eq!(s.version("v", 0).unwrap(), 2);
        s.insert("v", 0, vec![0.0f64; 2], 16).unwrap();
        assert_eq!(s.version("v", 0).unwrap(), 3, "replace continues the count");
        assert!(matches!(s.version("v", 1), Err(PsError::NotFound(_))));
    }

    #[test]
    fn post_restart_versions_never_collide_with_pre_crash_ones() {
        let s = PsServer::new(0, 1 << 20);
        s.insert("v", 0, 1u64, 8).unwrap();
        s.update("v", 0, |x: &mut u64| *x = 2).unwrap();
        let pre = s.version("v", 0).unwrap();
        s.kill();
        s.restart(SimTime::from_secs(1));
        assert_eq!(s.epoch(), 1);
        // Recovery re-inserts the partition; even after exactly as many
        // writes as before the crash, the version lives in a new range.
        s.insert("v", 0, 1u64, 8).unwrap();
        s.update("v", 0, |x: &mut u64| *x = 2).unwrap();
        let post = s.version("v", 0).unwrap();
        assert_ne!(pre, post, "a restored partition echoed a pre-crash version");
        assert_eq!(post, (1 << 32) + 2);
    }

    #[test]
    fn remove_object_drops_all_partitions() {
        let s = PsServer::new(0, 1000);
        s.insert("x", 0, (), 10).unwrap();
        s.insert("x", 1, (), 10).unwrap();
        s.insert("y", 0, (), 10).unwrap();
        s.remove_object("x");
        assert!(!s.contains("x", 0));
        assert!(!s.contains("x", 1));
        assert!(s.contains("y", 0));
        assert_eq!(s.memory().in_use(), 10);
        assert_eq!(s.partition_count(), 1);
    }
}
