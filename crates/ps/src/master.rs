//! The PS master (paper §III-B): resource allocation, task monitoring,
//! and failure recovery.
//!
//! "When a task is submitted to the resource management platform such as
//! Yarn and Kubernetes, the master is first initialized. It then requests
//! resources … to launch the parameter servers. During the execution, the
//! master monitors the status of servers by periodically sending health
//! checking signals. Once one server encounters failure, the master asks
//! the resource management platform to restart the server" — and then
//! drives checkpoint-based state recovery with per-object consistency
//! policies (see [`crate::RecoveryMode`]).

use psgraph_dfs::Dfs;
use psgraph_net::{Mailbox, NodeId};
use psgraph_sim::{NodeClock, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::Result;
use crate::ps::Ps;

/// Heartbeat payload recorded by the master's monitor mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    Alive,
    Dead,
}

/// The master node.
pub struct Master {
    clock: NodeClock,
    monitor: Mailbox<Health>,
    checks_run: AtomicU64,
    recoveries: AtomicU64,
}

impl Default for Master {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Master {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Master")
            .field("checks_run", &self.checks_run.load(Ordering::Relaxed))
            .field("recoveries", &self.recoveries.load(Ordering::Relaxed))
            .finish()
    }
}

impl Master {
    pub fn new() -> Self {
        Master {
            clock: NodeClock::new(),
            monitor: Mailbox::new(),
            checks_run: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
        }
    }

    pub fn clock(&self) -> &NodeClock {
        &self.clock
    }

    /// Heartbeats received so far (diagnostics; drained by health checks).
    pub fn pending_heartbeats(&self) -> usize {
        self.monitor.len()
    }

    pub fn checks_run(&self) -> u64 {
        self.checks_run.load(Ordering::Relaxed)
    }

    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }

    /// One health-check round: ping every server (heartbeat RPCs charged
    /// to the master's clock) and report which are dead. Does not recover.
    pub fn health_check(&self, ps: &Ps) -> Vec<usize> {
        self.checks_run.fetch_add(1, Ordering::Relaxed);
        let mut dead = Vec::new();
        for i in 0..ps.num_servers() {
            let server = ps.server(i);
            // Ping: a tiny RPC; dead servers time out (charged as one
            // latency each way — the master learns nothing sooner).
            if server.is_alive() {
                ps.network().rpc(&self.clock, server.port(), 16, 8, 16);
                self.monitor.post(NodeId::Server(i), self.clock.now(), Health::Alive);
            } else {
                self.clock.advance(ps.cost().net_latency);
                self.clock.advance(ps.cost().net_latency);
                self.monitor.post(NodeId::Server(i), self.clock.now(), Health::Dead);
                dead.push(i);
            }
        }
        // Fold the round's heartbeats (keeps the mailbox bounded).
        let _ = self.monitor.drain();
        dead
    }

    /// Detect, restart, and recover every dead server (paper §III-B):
    /// charges detection delay + container restart per recovery wave,
    /// restores checkpointed state per each object's [`crate::RecoveryMode`],
    /// and returns the recovered server ids. `at` is the cluster time the
    /// wave starts (the master cannot act before the failure happened).
    pub fn recover_failed(&self, ps: &Ps, dfs: &Dfs, at: SimTime) -> Result<Vec<usize>> {
        self.clock.sync_to(at);
        let dead = self.health_check(ps);
        for &id in &dead {
            self.clock.advance(ps.cost().restart_overhead());
            ps.restart_server(id, self.clock.now());
            ps.recover_server(id, dfs, &self.clock)?;
            self.recoveries.fetch_add(1, Ordering::Relaxed);
        }
        Ok(dead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ps::PsConfig;
    use crate::{Partitioner, RecoveryMode, VectorHandle};
    use std::sync::Arc;

    fn setup() -> (Arc<Ps>, Master, Dfs, NodeClock) {
        let ps = Ps::new(PsConfig { servers: 3, ..Default::default() });
        (ps, Master::new(), Dfs::in_memory(), NodeClock::new())
    }

    #[test]
    fn health_check_reports_dead_servers() {
        let (ps, master, _dfs, _c) = setup();
        assert!(master.health_check(&ps).is_empty());
        ps.kill_server(1);
        assert_eq!(master.health_check(&ps), vec![1]);
        assert_eq!(master.checks_run(), 2);
        assert!(master.clock().now() > SimTime::ZERO, "pings cost time");
    }

    #[test]
    fn recover_failed_restores_state() {
        let (ps, master, dfs, c) = setup();
        let v = VectorHandle::<f64>::create(
            &ps, "m.v", 30, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        v.push_set(&c, &[0, 15, 29], &[1.0, 2.0, 3.0]).unwrap();
        ps.checkpoint_all(&dfs).unwrap();
        ps.kill_server(0);
        ps.kill_server(2);
        let recovered = master.recover_failed(&ps, &dfs, c.now()).unwrap();
        assert_eq!(recovered, vec![0, 2]);
        assert_eq!(master.recoveries(), 2);
        assert_eq!(v.pull(&c, &[0, 15, 29]).unwrap(), vec![1.0, 2.0, 3.0]);
        // Two full restart overheads were paid.
        assert!(master.clock().now() >= ps.cost().restart_overhead());
    }

    #[test]
    fn recover_failed_noop_when_healthy() {
        let (ps, master, dfs, c) = setup();
        let recovered = master.recover_failed(&ps, &dfs, c.now()).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(master.recoveries(), 0);
    }

    #[test]
    fn master_waits_for_the_failure_time() {
        let (ps, master, dfs, _c) = setup();
        ps.kill_server(1);
        // Nothing was checkpointed, but there are also no registered
        // objects — recovery succeeds trivially after restart.
        let at = SimTime::from_secs(100);
        master.recover_failed(&ps, &dfs, at).unwrap();
        assert!(master.clock().now() >= at + ps.cost().restart_overhead());
        assert!(ps.server(1).is_alive());
    }
}
