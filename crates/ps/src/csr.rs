//! CSR (compressed sparse row) adjacency on the PS — one of the §III-A
//! data structures ("PS supports different data structures, e.g.,
//! sparse/dense vector, sparse/dense matrix, CSR, vertex, and neighbor
//! table").
//!
//! Unlike [`crate::NeighborTableHandle`] (a mutable hash map of neighbor
//! lists), the CSR store is an immutable, range-partitioned snapshot of
//! the whole graph: each server holds a contiguous vertex range with
//! offsets + packed neighbor ids. It is the memory-densest representation
//! (8 B per edge + 8 B per vertex, no per-entry map overhead), suited to
//! algorithms that build the adjacency once and only read it.

use psgraph_sim::bytes::{Buf, BufMut};
use psgraph_sim::NodeClock;
use std::sync::Arc;

use crate::error::{PsError, Result};
use crate::partition::{PartitionLayout, Partitioner};
use crate::ps::{ObjectOps, Ps, RecoveryMode};
use crate::server::PsServer;

/// One server's CSR slice: vertices `[start, start + n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrPart {
    pub start: u64,
    /// `offsets.len() == n + 1`; neighbors of local vertex `i` are
    /// `targets[offsets[i]..offsets[i+1]]`.
    pub offsets: Vec<u64>,
    pub targets: Vec<u64>,
}

impl CsrPart {
    fn approx_bytes(&self) -> u64 {
        (self.offsets.len() + self.targets.len()) as u64 * 8 + 48
    }

    fn neighbors(&self, v: u64) -> &[u64] {
        let i = (v - self.start) as usize;
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    fn encode(&self) -> Vec<u8> {
        let mut buf =
            Vec::with_capacity(24 + (self.offsets.len() + self.targets.len()) * 8);
        buf.put_u64_le(self.start);
        buf.put_u64_le(self.offsets.len() as u64);
        buf.put_u64_le(self.targets.len() as u64);
        for &o in &self.offsets {
            buf.put_u64_le(o);
        }
        for &t in &self.targets {
            buf.put_u64_le(t);
        }
        buf
    }

    fn decode(mut bytes: &[u8]) -> Result<Self> {
        let buf = &mut bytes;
        if buf.remaining() < 24 {
            return Err(PsError::Dfs("truncated CSR checkpoint".into()));
        }
        let start = buf.get_u64_le();
        let n_off = buf.get_u64_le() as usize;
        let n_tgt = buf.get_u64_le() as usize;
        if buf.remaining() < (n_off + n_tgt) * 8 {
            return Err(PsError::Dfs("truncated CSR checkpoint".into()));
        }
        let offsets = (0..n_off).map(|_| buf.get_u64_le()).collect();
        let targets = (0..n_tgt).map(|_| buf.get_u64_le()).collect();
        Ok(CsrPart { start, offsets, targets })
    }
}

struct CsrOps {
    name: String,
    layout: PartitionLayout,
    recovery: RecoveryMode,
}

impl ObjectOps for CsrOps {
    fn name(&self) -> &str {
        &self.name
    }

    fn layout(&self) -> &PartitionLayout {
        &self.layout
    }

    fn recovery_mode(&self) -> RecoveryMode {
        self.recovery
    }

    fn encode_partition(&self, server: &PsServer, partition: usize) -> Result<Vec<u8>> {
        server.get(&self.name, partition, |p: &CsrPart| p.encode())
    }

    fn decode_partition(&self, server: &PsServer, partition: usize, bytes: &[u8]) -> Result<()> {
        let part = CsrPart::decode(bytes)?;
        let size = part.approx_bytes();
        server.insert(&self.name, partition, part, size)
    }
}

/// Client handle to an immutable CSR adjacency snapshot on the PS.
#[derive(Clone)]
pub struct CsrHandle {
    ps: Arc<Ps>,
    name: String,
    layout: PartitionLayout,
}

impl std::fmt::Debug for CsrHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsrHandle")
            .field("name", &self.name)
            .field("vertices", &self.layout.size)
            .finish()
    }
}

impl CsrHandle {
    /// Build the CSR snapshot from `(src, sorted-neighbors)` entries.
    /// Vertices absent from `tables` get empty adjacency. The upload is
    /// charged to `client` (one bulk push per server).
    pub fn build(
        ps: &Arc<Ps>,
        name: impl Into<String>,
        num_vertices: u64,
        tables: &[(u64, Vec<u64>)],
        client: &NodeClock,
        recovery: RecoveryMode,
    ) -> Result<Self> {
        let name = name.into();
        let layout = PartitionLayout::new(
            Partitioner::Range,
            num_vertices,
            ps.num_servers(),
            ps.num_servers(),
        );
        // Index input entries by vertex.
        let mut by_vertex: Vec<Option<&Vec<u64>>> = vec![None; num_vertices as usize];
        for (v, ns) in tables {
            if *v >= num_vertices {
                return Err(PsError::IndexOutOfBounds {
                    name: name.clone(),
                    index: *v,
                    size: num_vertices,
                });
            }
            by_vertex[*v as usize] = Some(ns);
        }
        for p in 0..layout.num_partitions {
            let (start, end) = layout.range_of(p).expect("range layout");
            let mut offsets = Vec::with_capacity((end - start) as usize + 1);
            let mut targets = Vec::new();
            offsets.push(0);
            for v in start..end {
                if let Some(ns) = by_vertex[v as usize] {
                    targets.extend_from_slice(ns);
                }
                offsets.push(targets.len() as u64);
            }
            let part = CsrPart { start, offsets, targets };
            let bytes = part.approx_bytes();
            let server = ps.server(layout.server_of_partition(p));
            ps.network().rpc(
                client,
                server.port(),
                bytes,
                part.targets.len() as u64 * ps.config().ops_per_item,
                8,
            );
            server.insert(&name, p, part, bytes)?;
        }
        ps.register(Arc::new(CsrOps { name: name.clone(), layout: layout.clone(), recovery }));
        Ok(CsrHandle { ps: Arc::clone(ps), name, layout })
    }

    pub(crate) fn layout(&self) -> &PartitionLayout {
        &self.layout
    }

    /// Per-partition write versions (see [`PsServer::version`]). The CSR
    /// store is immutable in normal operation, so these only move when the
    /// object is rebuilt under the same name.
    pub fn partition_versions(&self) -> Result<Vec<u64>> {
        (0..self.layout.num_partitions)
            .map(|p| {
                self.ps
                    .server(self.layout.server_of_partition(p))
                    .version(&self.name, p)
            })
            .collect()
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn num_vertices(&self) -> u64 {
        self.layout.size
    }

    /// Pull adjacency lists for `ids` (aligned with the input).
    pub fn pull(&self, client: &NodeClock, ids: &[u64]) -> Result<Vec<Vec<u64>>> {
        for &v in ids {
            if v >= self.layout.size {
                return Err(PsError::IndexOutOfBounds {
                    name: self.name.clone(),
                    index: v,
                    size: self.layout.size,
                });
            }
        }
        let mut out: Vec<Vec<u64>> = vec![Vec::new(); ids.len()];
        let mut groups: psgraph_sim::FxHashMap<usize, Vec<usize>> = Default::default();
        for (pos, &v) in ids.iter().enumerate() {
            groups.entry(self.layout.partition_of(v)).or_default().push(pos);
        }
        for (p, positions) in groups {
            let server = self.ps.server(self.layout.server_of_partition(p));
            server.ensure_alive()?;
            let mut resp = 0u64;
            server.get(&self.name, p, |part: &CsrPart| {
                for &pos in &positions {
                    let ns = part.neighbors(ids[pos]);
                    resp += ns.len() as u64 * 8 + 8;
                    out[pos] = ns.to_vec();
                }
            })?;
            self.ps.network().rpc(
                client,
                server.port(),
                positions.len() as u64 * 8,
                positions.len() as u64 * self.ps.config().ops_per_item,
                resp,
            );
        }
        Ok(out)
    }

    /// Out-degrees for `ids` (only counts cross the wire).
    pub fn degrees(&self, client: &NodeClock, ids: &[u64]) -> Result<Vec<u64>> {
        for &v in ids {
            if v >= self.layout.size {
                return Err(PsError::IndexOutOfBounds {
                    name: self.name.clone(),
                    index: v,
                    size: self.layout.size,
                });
            }
        }
        let mut out = vec![0u64; ids.len()];
        let mut groups: psgraph_sim::FxHashMap<usize, Vec<usize>> = Default::default();
        for (pos, &v) in ids.iter().enumerate() {
            groups.entry(self.layout.partition_of(v)).or_default().push(pos);
        }
        for (p, positions) in groups {
            let server = self.ps.server(self.layout.server_of_partition(p));
            server.ensure_alive()?;
            server.get(&self.name, p, |part: &CsrPart| {
                for &pos in &positions {
                    out[pos] = part.neighbors(ids[pos]).len() as u64;
                }
            })?;
            self.ps.network().rpc(
                client,
                server.port(),
                positions.len() as u64 * 8,
                positions.len() as u64 * self.ps.config().ops_per_item,
                positions.len() as u64 * 8,
            );
        }
        Ok(out)
    }

    /// Total edges stored (diagnostics).
    pub fn num_edges(&self) -> Result<u64> {
        let mut total = 0;
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            total += server.get(&self.name, p, |part: &CsrPart| part.targets.len() as u64)?;
        }
        Ok(total)
    }

    /// Bytes resident on servers — compare with
    /// `NeighborTableHandle::resident_bytes` to see the CSR advantage.
    pub fn resident_bytes(&self) -> Result<u64> {
        let mut total = 0;
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            total += server.get(&self.name, p, |part: &CsrPart| part.approx_bytes())?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor::NeighborTableHandle;
    use crate::ps::PsConfig;
    use psgraph_dfs::Dfs;

    fn ps() -> Arc<Ps> {
        Ps::new(PsConfig { servers: 3, ..Default::default() })
    }

    fn sample_tables() -> Vec<(u64, Vec<u64>)> {
        vec![(0, vec![1, 2, 3]), (2, vec![0]), (7, vec![5, 6]), (9, vec![0, 9])]
    }

    #[test]
    fn build_and_pull() {
        let ps = ps();
        let c = NodeClock::new();
        let csr =
            CsrHandle::build(&ps, "csr", 10, &sample_tables(), &c, RecoveryMode::Inconsistent)
                .unwrap();
        let got = csr.pull(&c, &[0, 1, 2, 7, 9]).unwrap();
        assert_eq!(got[0], vec![1, 2, 3]);
        assert!(got[1].is_empty());
        assert_eq!(got[2], vec![0]);
        assert_eq!(got[3], vec![5, 6]);
        assert_eq!(got[4], vec![0, 9]);
        assert_eq!(csr.num_edges().unwrap(), 8);
        assert_eq!(csr.num_vertices(), 10);
        assert!(c.now() > psgraph_sim::SimTime::ZERO);
    }

    #[test]
    fn degrees_match_lists() {
        let ps = ps();
        let c = NodeClock::new();
        let csr =
            CsrHandle::build(&ps, "csr", 10, &sample_tables(), &c, RecoveryMode::Inconsistent)
                .unwrap();
        assert_eq!(csr.degrees(&c, &[0, 1, 7]).unwrap(), vec![3, 0, 2]);
    }

    #[test]
    fn out_of_range_rejected() {
        let ps = ps();
        let c = NodeClock::new();
        let csr =
            CsrHandle::build(&ps, "csr", 10, &sample_tables(), &c, RecoveryMode::Inconsistent)
                .unwrap();
        assert!(csr.pull(&c, &[10]).is_err());
        assert!(CsrHandle::build(&ps, "bad", 5, &[(9, vec![])], &c, RecoveryMode::Inconsistent)
            .is_err());
    }

    #[test]
    fn denser_than_neighbor_table() {
        let ps = ps();
        let c = NodeClock::new();
        // Same adjacency in both representations.
        let tables: Vec<(u64, Vec<u64>)> =
            (0..200u64).map(|v| (v, ((v + 1) % 200..(v + 6) % 200).collect())).collect();
        let tables: Vec<(u64, Vec<u64>)> = tables
            .into_iter()
            .map(|(v, _)| (v, (0..5).map(|i| (v + i + 1) % 200).collect()))
            .collect();
        let csr = CsrHandle::build(&ps, "csr", 200, &tables, &c, RecoveryMode::Inconsistent)
            .unwrap();
        let nt = NeighborTableHandle::create(
            &ps, "nt", 200, Partitioner::Hash, RecoveryMode::Inconsistent,
        )
        .unwrap();
        nt.push(&c, &tables).unwrap();
        let csr_bytes = csr.resident_bytes().unwrap();
        let nt_bytes = nt.resident_bytes().unwrap();
        assert!(
            csr_bytes < nt_bytes,
            "CSR ({csr_bytes}) should be denser than the hash table ({nt_bytes})"
        );
    }

    #[test]
    fn checkpoint_roundtrip() {
        let ps = ps();
        let c = NodeClock::new();
        let dfs = Dfs::in_memory();
        let csr =
            CsrHandle::build(&ps, "csr", 10, &sample_tables(), &c, RecoveryMode::Inconsistent)
                .unwrap();
        ps.checkpoint(&dfs, "csr").unwrap();
        for s in 0..ps.num_servers() {
            ps.kill_server(s);
            ps.restart_server(s, c.now());
            ps.recover_server(s, &dfs, &c).unwrap();
        }
        assert_eq!(csr.pull(&c, &[0]).unwrap()[0], vec![1, 2, 3]);
        assert_eq!(csr.num_edges().unwrap(), 8);
    }

    #[test]
    fn csrpart_encode_decode() {
        let p = CsrPart { start: 5, offsets: vec![0, 2, 2, 3], targets: vec![9, 8, 7] };
        assert_eq!(CsrPart::decode(&p.encode()).unwrap(), p);
        assert!(CsrPart::decode(&[1, 2]).is_err());
    }
}

#[cfg(test)]
mod degree_cost_tests {
    use super::*;
    use crate::ps::{Ps, PsConfig};

    #[test]
    fn degrees_cheaper_than_pull_for_fat_lists() {
        let ps = Ps::new(PsConfig { servers: 2, ..Default::default() });
        let c0 = NodeClock::new();
        let fat: Vec<(u64, Vec<u64>)> = (0..50u64).map(|v| (v, (0..400).collect())).collect();
        let csr = CsrHandle::build(&ps, "fat", 50, &fat, &c0, RecoveryMode::Inconsistent)
            .unwrap();
        let ids: Vec<u64> = (0..50).collect();
        let c1 = NodeClock::new();
        csr.degrees(&c1, &ids).unwrap();
        let c2 = NodeClock::new();
        csr.pull(&c2, &ids).unwrap();
        assert!(
            c1.now() < c2.now(),
            "degrees ({}) should beat full pulls ({})",
            c1.now(),
            c2.now()
        );
    }

    #[test]
    fn degrees_rejects_out_of_range() {
        let ps = Ps::new(PsConfig { servers: 2, ..Default::default() });
        let c = NodeClock::new();
        let csr = CsrHandle::build(&ps, "x", 5, &[(0, vec![1])], &c, RecoveryMode::Inconsistent)
            .unwrap();
        assert!(csr.degrees(&c, &[5]).is_err());
    }
}
