//! Partitioning strategies for PS data (paper §III-A: "We implement hash
//! partition, range partition, and hash-range partition").
//!
//! A [`PartitionLayout`] maps a key space `[0, size)` (vertex indices, row
//! indices, or column indices) to `num_partitions` partitions, and each
//! partition to a server (round-robin). Range partitioning keeps contiguous
//! blocks together (cheap dense storage, range pulls); hash partitioning
//! spreads skewed access; hash-range buckets by hash first and then splits
//! each bucket by range (the hybrid-range strategy the paper cites).

use psgraph_sim::hash::hash_u64;

/// The partitioning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Partitioner {
    /// `partition = hash(key) % n`.
    Hash,
    /// Contiguous ranges of keys per partition.
    Range,
    /// Hash into `buckets` groups, range-split within each group.
    HashRange { buckets: usize },
}

/// A concrete layout: strategy + key-space size + partition count +
/// server count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionLayout {
    pub partitioner: Partitioner,
    pub size: u64,
    pub num_partitions: usize,
    pub num_servers: usize,
}

impl PartitionLayout {
    pub fn new(
        partitioner: Partitioner,
        size: u64,
        num_partitions: usize,
        num_servers: usize,
    ) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        assert!(num_servers > 0, "need at least one server");
        if let Partitioner::HashRange { buckets } = partitioner {
            assert!(buckets > 0, "hash-range needs at least one bucket");
            assert!(
                num_partitions.is_multiple_of(buckets),
                "hash-range partitions ({num_partitions}) must be a multiple of buckets ({buckets})"
            );
        }
        PartitionLayout { partitioner, size, num_partitions, num_servers }
    }

    /// Default layout: one range partition per server.
    pub fn range(size: u64, num_servers: usize) -> Self {
        Self::new(Partitioner::Range, size, num_servers, num_servers)
    }

    /// Default hash layout: one partition per server.
    pub fn hash(size: u64, num_servers: usize) -> Self {
        Self::new(Partitioner::Hash, size, num_servers, num_servers)
    }

    /// Range block length (last block absorbs the remainder).
    fn range_block(&self, parts: u64) -> u64 {
        (self.size / parts).max(1)
    }

    /// Partition holding `key`.
    pub fn partition_of(&self, key: u64) -> usize {
        debug_assert!(key < self.size || self.size == 0, "key {key} >= size {}", self.size);
        let n = self.num_partitions as u64;
        match self.partitioner {
            Partitioner::Hash => (hash_u64(key) % n) as usize,
            Partitioner::Range => {
                let block = self.range_block(n);
                ((key / block).min(n - 1)) as usize
            }
            Partitioner::HashRange { buckets } => {
                let buckets = buckets as u64;
                let per_bucket = n / buckets;
                let bucket = hash_u64(key) % buckets;
                let block = self.range_block(per_bucket);
                let within = (key / block).min(per_bucket - 1);
                (bucket * per_bucket + within) as usize
            }
        }
    }

    /// Server hosting a partition (round-robin placement).
    pub fn server_of_partition(&self, partition: usize) -> usize {
        partition % self.num_servers
    }

    /// Server hosting `key`.
    pub fn server_of(&self, key: u64) -> usize {
        self.server_of_partition(self.partition_of(key))
    }

    /// For range partitions: the key interval `[start, end)` of `partition`.
    /// Returns `None` for hash-style layouts (no contiguous interval).
    pub fn range_of(&self, partition: usize) -> Option<(u64, u64)> {
        match self.partitioner {
            Partitioner::Range => {
                let n = self.num_partitions as u64;
                let block = self.range_block(n);
                let p = partition as u64;
                let start = (p * block).min(self.size);
                let end = if p == n - 1 { self.size } else { ((p + 1) * block).min(self.size) };
                Some((start, end))
            }
            _ => None,
        }
    }

    /// Whether partitions are contiguous ranges (dense storage possible).
    pub fn is_range(&self) -> bool {
        matches!(self.partitioner, Partitioner::Range)
    }

    /// Partitions hosted by `server`.
    pub fn partitions_of_server(&self, server: usize) -> Vec<usize> {
        (0..self.num_partitions)
            .filter(|&p| self.server_of_partition(p) == server)
            .collect()
    }

    /// Group `keys` by target server, preserving per-server input order.
    /// Returns `(server, positions-into-keys)` pairs for the non-empty
    /// servers.
    pub fn group_by_server(&self, keys: &[u64]) -> Vec<(usize, Vec<usize>)> {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.num_servers];
        for (i, &k) in keys.iter().enumerate() {
            groups[self.server_of(k)].push(i);
        }
        groups
            .into_iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_all(layout: &PartitionLayout) {
        for k in 0..layout.size {
            let p = layout.partition_of(k);
            assert!(p < layout.num_partitions, "key {k} → bad partition {p}");
            let s = layout.server_of(k);
            assert!(s < layout.num_servers);
        }
    }

    #[test]
    fn hash_layout_covers_and_balances() {
        let l = PartitionLayout::new(Partitioner::Hash, 10_000, 8, 4);
        covers_all(&l);
        let mut counts = vec![0u64; 8];
        for k in 0..10_000 {
            counts[l.partition_of(k)] += 1;
        }
        for &c in &counts {
            assert!(c > 700 && c < 1800, "unbalanced: {counts:?}");
        }
    }

    #[test]
    fn range_layout_is_contiguous() {
        let l = PartitionLayout::new(Partitioner::Range, 100, 4, 2);
        covers_all(&l);
        assert_eq!(l.partition_of(0), 0);
        assert_eq!(l.partition_of(24), 0);
        assert_eq!(l.partition_of(25), 1);
        assert_eq!(l.partition_of(99), 3);
        assert_eq!(l.range_of(0), Some((0, 25)));
        assert_eq!(l.range_of(3), Some((75, 100)));
    }

    #[test]
    fn range_last_partition_absorbs_remainder() {
        let l = PartitionLayout::new(Partitioner::Range, 10, 3, 3);
        covers_all(&l);
        // block = 3: partitions hold [0,3) [3,6) [6,10)
        assert_eq!(l.range_of(2), Some((6, 10)));
        assert_eq!(l.partition_of(9), 2);
    }

    #[test]
    fn range_with_more_partitions_than_keys() {
        let l = PartitionLayout::new(Partitioner::Range, 2, 4, 2);
        covers_all(&l);
        // Every key maps to a valid partition even when partitions > keys.
        assert!(l.partition_of(1) < 4);
    }

    #[test]
    fn hash_range_covers_and_respects_buckets() {
        let l = PartitionLayout::new(Partitioner::HashRange { buckets: 2 }, 1000, 8, 4);
        covers_all(&l);
        // Keys in the same hash bucket and close in index share partitions;
        // coverage of all 8 partitions should still happen.
        let mut used = std::collections::HashSet::new();
        for k in 0..1000 {
            used.insert(l.partition_of(k));
        }
        assert!(used.len() >= 6, "only {} partitions used", used.len());
    }

    #[test]
    #[should_panic(expected = "multiple of buckets")]
    fn hash_range_validates_divisibility() {
        PartitionLayout::new(Partitioner::HashRange { buckets: 3 }, 10, 8, 2);
    }

    #[test]
    fn server_round_robin() {
        let l = PartitionLayout::new(Partitioner::Range, 100, 6, 3);
        assert_eq!(l.server_of_partition(0), 0);
        assert_eq!(l.server_of_partition(4), 1);
        assert_eq!(l.partitions_of_server(0), vec![0, 3]);
        assert_eq!(l.partitions_of_server(2), vec![2, 5]);
    }

    #[test]
    fn group_by_server_partitions_positions() {
        let l = PartitionLayout::range(100, 4);
        let keys = vec![0, 99, 50, 1, 75];
        let groups = l.group_by_server(&keys);
        let mut seen = vec![false; keys.len()];
        for (s, positions) in &groups {
            for &i in positions {
                assert_eq!(l.server_of(keys[i]), *s);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn range_of_none_for_hash() {
        let l = PartitionLayout::hash(100, 4);
        assert_eq!(l.range_of(0), None);
        assert!(!l.is_range());
        assert!(PartitionLayout::range(100, 4).is_range());
    }

    #[test]
    fn deterministic_across_instances() {
        let a = PartitionLayout::hash(1000, 4);
        let b = PartitionLayout::hash(1000, 4);
        for k in 0..1000 {
            assert_eq!(a.partition_of(k), b.partition_of(k));
        }
    }
}
