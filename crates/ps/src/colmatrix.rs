//! Column-partitioned embedding matrices for LINE (paper §IV-D).
//!
//! "To enable the dot product operation on PS, we partition the embedding
//! vectors and context vectors by column … the same dimensions of u and c
//! are co-located on the same server, so that we can calculate partial dot
//! products on PS and merge them on the executor."
//!
//! Each server holds a column slice `[c0, c1)` of *every* row. The psFunc
//! operators [`ColMatrixHandle::dot_pairs`] and
//! [`ColMatrixHandle::axpy_pairs`] run entirely server-side: only vertex-id
//! pairs, scalar coefficients, and partial sums cross the network — this is
//! the communication optimization the LINE ablation bench measures against
//! pull-whole-row training.

use psgraph_sim::bytes::{Buf, BufMut};
use psgraph_sim::{FxHashMap, NodeClock, SplitMix64};
use std::sync::Arc;

use crate::error::{PsError, Result};
use crate::partition::{PartitionLayout, Partitioner};
use crate::ps::{ObjectOps, Ps, RecoveryMode};
use crate::server::PsServer;

/// One server's column slice of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ColPart {
    pub col_start: usize,
    pub col_end: usize,
    /// Row-major `rows × (col_end - col_start)` values.
    pub data: Vec<f32>,
}

impl ColPart {
    fn width(&self) -> usize {
        self.col_end - self.col_start
    }

    fn approx_bytes(&self) -> u64 {
        self.data.len() as u64 * 4 + 48
    }

    #[inline]
    fn row(&self, r: u64) -> &[f32] {
        let w = self.width();
        &self.data[r as usize * w..(r as usize + 1) * w]
    }

    #[inline]
    fn row_mut(&mut self, r: u64) -> &mut [f32] {
        let w = self.width();
        &mut self.data[r as usize * w..(r as usize + 1) * w]
    }

    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(24 + self.data.len() * 4);
        buf.put_u64_le(self.col_start as u64);
        buf.put_u64_le(self.col_end as u64);
        buf.put_u64_le(self.data.len() as u64);
        for v in &self.data {
            buf.put_f32_le(*v);
        }
        buf
    }

    fn decode(mut bytes: &[u8]) -> Result<Self> {
        let buf = &mut bytes;
        if buf.remaining() < 24 {
            return Err(PsError::Dfs("truncated col-matrix checkpoint".into()));
        }
        let col_start = buf.get_u64_le() as usize;
        let col_end = buf.get_u64_le() as usize;
        let len = buf.get_u64_le() as usize;
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(buf.get_f32_le());
        }
        Ok(ColPart { col_start, col_end, data })
    }
}

struct ColMatrixOps {
    name: String,
    layout: PartitionLayout,
    recovery: RecoveryMode,
}

impl ObjectOps for ColMatrixOps {
    fn name(&self) -> &str {
        &self.name
    }

    fn layout(&self) -> &PartitionLayout {
        &self.layout
    }

    fn recovery_mode(&self) -> RecoveryMode {
        self.recovery
    }

    fn encode_partition(&self, server: &PsServer, partition: usize) -> Result<Vec<u8>> {
        server.get(&self.name, partition, |p: &ColPart| p.encode())
    }

    fn decode_partition(&self, server: &PsServer, partition: usize, bytes: &[u8]) -> Result<()> {
        let part = ColPart::decode(bytes)?;
        let size = part.approx_bytes();
        server.insert(&self.name, partition, part, size)
    }
}

/// Client handle to a column-partitioned `rows × cols` f32 matrix.
#[derive(Clone)]
pub struct ColMatrixHandle {
    ps: Arc<Ps>,
    name: String,
    rows: u64,
    cols: usize,
    layout: PartitionLayout,
}

impl std::fmt::Debug for ColMatrixHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColMatrixHandle")
            .field("name", &self.name)
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .finish()
    }
}

impl ColMatrixHandle {
    /// Create a zero matrix whose columns are range-partitioned over the
    /// servers.
    pub fn create(
        ps: &Arc<Ps>,
        name: impl Into<String>,
        rows: u64,
        cols: usize,
        recovery: RecoveryMode,
    ) -> Result<Self> {
        assert!(cols > 0, "need at least one column");
        let name = name.into();
        let layout = PartitionLayout::new(
            Partitioner::Range,
            cols as u64,
            ps.num_servers().min(cols),
            ps.num_servers(),
        );
        for p in 0..layout.num_partitions {
            let (c0, c1) = layout.range_of(p).expect("range layout");
            let server = ps.server(layout.server_of_partition(p));
            let part = ColPart {
                col_start: c0 as usize,
                col_end: c1 as usize,
                data: vec![0.0; rows as usize * (c1 - c0) as usize],
            };
            let bytes = part.approx_bytes();
            server.insert(&name, p, part, bytes)?;
        }
        ps.register(Arc::new(ColMatrixOps {
            name: name.clone(),
            layout: layout.clone(),
            recovery,
        }));
        Ok(ColMatrixHandle { ps: Arc::clone(ps), name, rows, cols, layout })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Per-partition write versions (see [`PsServer::version`]).
    pub fn partition_versions(&self) -> Result<Vec<u64>> {
        (0..self.layout.num_partitions)
            .map(|p| {
                self.ps
                    .server(self.layout.server_of_partition(p))
                    .version(&self.name, p)
            })
            .collect()
    }

    /// Pull one server's full column slice (snapshot delta export: a
    /// changed partition is a column stripe of every row). Charged as one
    /// bulk RPC to `client`.
    pub(crate) fn pull_col_slice(&self, client: &NodeClock, partition: usize) -> Result<ColPart> {
        let server = self.ps.server(self.layout.server_of_partition(partition));
        server.ensure_alive()?;
        let part = server.get(&self.name, partition, |p: &ColPart| p.clone())?;
        self.ps.network().rpc(
            client,
            server.port(),
            16,
            part.data.len() as u64 * self.ps.config().ops_per_item,
            part.data.len() as u64 * 4 + 16,
        );
        Ok(part)
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    fn check_rows(&self, rows: &[u64]) -> Result<()> {
        for &r in rows {
            if r >= self.rows {
                return Err(PsError::IndexOutOfBounds {
                    name: self.name.clone(),
                    index: r,
                    size: self.rows,
                });
            }
        }
        Ok(())
    }

    fn same_shape(&self, other: &ColMatrixHandle) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols || self.layout != other.layout {
            return Err(PsError::DimensionMismatch(format!(
                "{} and {} have different shapes/layouts",
                self.name, other.name
            )));
        }
        Ok(())
    }

    /// Seeded uniform init in `[-scale, scale)`.
    pub fn init_uniform(&self, client: &NodeClock, seed: u64, scale: f32) -> Result<()> {
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            server.ensure_alive()?;
            let n = server.update(&self.name, p, |part: &mut ColPart| {
                let mut rng = SplitMix64::new(seed ^ (p as u64).wrapping_mul(0xA5A5_5A5A));
                for v in part.data.iter_mut() {
                    *v = (rng.next_f64() as f32 * 2.0 - 1.0) * scale;
                }
                part.data.len()
            })?;
            self.ps.network().rpc(
                client,
                server.port(),
                24,
                n as u64 * self.ps.config().ops_per_item,
                8,
            );
        }
        Ok(())
    }

    /// Server-side partial dot products, merged client-side:
    /// `out[k] = Σ_c self[i_k, c] × other[j_k, c]` for `pairs[k] = (i_k, j_k)`.
    /// Only ids and one f64 per pair per server cross the wire.
    pub fn dot_pairs(
        &self,
        client: &NodeClock,
        other: &ColMatrixHandle,
        pairs: &[(u64, u64)],
    ) -> Result<Vec<f64>> {
        self.same_shape(other)?;
        let is: Vec<u64> = pairs.iter().map(|(i, _)| *i).collect();
        let js: Vec<u64> = pairs.iter().map(|(_, j)| *j).collect();
        self.check_rows(&is)?;
        self.check_rows(&js)?;
        let mut out = vec![0.0f64; pairs.len()];
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            server.ensure_alive()?;
            // Copy the needed rows of `self` out, then scan `other`
            // (avoids nested locks when self == other).
            let mut self_rows: FxHashMap<u64, Vec<f32>> = FxHashMap::default();
            server.get(&self.name, p, |a: &ColPart| {
                for &i in &is {
                    self_rows.entry(i).or_insert_with(|| a.row(i).to_vec());
                }
            })?;
            let width = server.get(&other.name, p, |b: &ColPart| {
                for (k, &(i, j)) in pairs.iter().enumerate() {
                    let arow = &self_rows[&i];
                    let brow = b.row(j);
                    let mut s = 0.0f64;
                    for (x, y) in arow.iter().zip(brow) {
                        s += (*x as f64) * (*y as f64);
                    }
                    out[k] += s;
                }
                b.width()
            })?;
            self.ps.network().rpc(
                client,
                server.port(),
                pairs.len() as u64 * 16,
                (pairs.len() * width) as u64 * 2,
                pairs.len() as u64 * 8,
            );
        }
        Ok(out)
    }

    /// Server-side pair update: `self[dst] += coef × src[src_row]`, using
    /// the *pre-update* value of `src` (SGD semantics when `src` is `self`
    /// or a sibling matrix). Updates apply in input order.
    pub fn axpy_pairs(
        &self,
        client: &NodeClock,
        src: &ColMatrixHandle,
        updates: &[(u64, u64, f64)],
    ) -> Result<()> {
        self.same_shape(src)?;
        let dsts: Vec<u64> = updates.iter().map(|(d, _, _)| *d).collect();
        let srcs: Vec<u64> = updates.iter().map(|(_, s, _)| *s).collect();
        self.check_rows(&dsts)?;
        self.check_rows(&srcs)?;
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            server.ensure_alive()?;
            let mut src_rows: FxHashMap<u64, Vec<f32>> = FxHashMap::default();
            server.get(&src.name, p, |s: &ColPart| {
                for &r in &srcs {
                    src_rows.entry(r).or_insert_with(|| s.row(r).to_vec());
                }
            })?;
            let width = server.update(&self.name, p, |d: &mut ColPart| {
                for &(dst, srow, coef) in updates {
                    let from = &src_rows[&srow];
                    let to = d.row_mut(dst);
                    for (t, f) in to.iter_mut().zip(from) {
                        *t += coef as f32 * *f;
                    }
                }
                d.width()
            })?;
            self.ps.network().rpc(
                client,
                server.port(),
                updates.len() as u64 * 24,
                (updates.len() * width) as u64 * 2,
                8,
            );
        }
        Ok(())
    }

    /// Pull full rows, gathering slices from every server (the expensive
    /// baseline the column layout avoids; also used for final readout).
    pub fn pull_rows(&self, client: &NodeClock, rows: &[u64]) -> Result<Vec<Vec<f32>>> {
        self.check_rows(rows)?;
        let mut out = vec![vec![0.0f32; self.cols]; rows.len()];
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            server.ensure_alive()?;
            let width = server.get(&self.name, p, |part: &ColPart| {
                for (k, &r) in rows.iter().enumerate() {
                    out[k][part.col_start..part.col_end].copy_from_slice(part.row(r));
                }
                part.width()
            })?;
            self.ps.network().rpc(
                client,
                server.port(),
                rows.len() as u64 * 8,
                (rows.len() * width) as u64 * self.ps.config().ops_per_item,
                (rows.len() * width * 4) as u64,
            );
        }
        Ok(out)
    }

    /// Push full-row deltas, scattering slices to every server (baseline
    /// counterpart of [`ColMatrixHandle::pull_rows`]).
    pub fn push_add_rows(
        &self,
        client: &NodeClock,
        rows: &[u64],
        deltas: &[Vec<f32>],
    ) -> Result<()> {
        if rows.len() != deltas.len() {
            return Err(PsError::DimensionMismatch(format!(
                "{}: {} rows vs {} deltas",
                self.name,
                rows.len(),
                deltas.len()
            )));
        }
        for d in deltas {
            if d.len() != self.cols {
                return Err(PsError::DimensionMismatch(format!(
                    "{}: delta width {} vs cols {}",
                    self.name,
                    d.len(),
                    self.cols
                )));
            }
        }
        self.check_rows(rows)?;
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            server.ensure_alive()?;
            let width = server.update(&self.name, p, |part: &mut ColPart| {
                for (k, &r) in rows.iter().enumerate() {
                    let slice = &deltas[k][part.col_start..part.col_end];
                    for (t, f) in part.row_mut(r).iter_mut().zip(slice) {
                        *t += *f;
                    }
                }
                part.width()
            })?;
            self.ps.network().rpc(
                client,
                server.port(),
                (rows.len() * (8 + width * 4)) as u64,
                (rows.len() * width) as u64 * self.ps.config().ops_per_item,
                8,
            );
        }
        Ok(())
    }

    /// Bytes resident on servers.
    pub fn resident_bytes(&self) -> Result<u64> {
        let mut total = 0;
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            total += server.get(&self.name, p, |part: &ColPart| part.approx_bytes())?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ps::PsConfig;
    use psgraph_dfs::Dfs;

    fn ps() -> Arc<Ps> {
        Ps::new(PsConfig { servers: 3, ..Default::default() })
    }

    #[test]
    fn create_splits_columns_across_servers() {
        let ps = ps();
        let m = ColMatrixHandle::create(&ps, "u", 10, 9, RecoveryMode::Inconsistent).unwrap();
        assert_eq!(m.cols(), 9);
        assert_eq!(m.rows(), 10);
        // Three servers → three column slices of width 3.
        let c = NodeClock::new();
        let rows = m.pull_rows(&c, &[0]).unwrap();
        assert_eq!(rows[0].len(), 9);
    }

    #[test]
    fn push_pull_rows_roundtrip() {
        let ps = ps();
        let c = NodeClock::new();
        let m = ColMatrixHandle::create(&ps, "u", 5, 6, RecoveryMode::Inconsistent).unwrap();
        let delta: Vec<f32> = (0..6).map(|i| i as f32).collect();
        m.push_add_rows(&c, &[2], std::slice::from_ref(&delta)).unwrap();
        m.push_add_rows(&c, &[2], &[vec![1.0; 6]]).unwrap();
        let got = m.pull_rows(&c, &[2, 0]).unwrap();
        let want: Vec<f32> = delta.iter().map(|x| x + 1.0).collect();
        assert_eq!(got[0], want);
        assert_eq!(got[1], vec![0.0; 6]);
    }

    #[test]
    fn dot_pairs_matches_client_side_dot() {
        let ps = ps();
        let c = NodeClock::new();
        let u = ColMatrixHandle::create(&ps, "u", 8, 7, RecoveryMode::Inconsistent).unwrap();
        let v = ColMatrixHandle::create(&ps, "v", 8, 7, RecoveryMode::Inconsistent).unwrap();
        u.init_uniform(&c, 1, 1.0).unwrap();
        v.init_uniform(&c, 2, 1.0).unwrap();
        let pairs = [(0u64, 1u64), (3, 3), (7, 0)];
        let server_side = u.dot_pairs(&c, &v, &pairs).unwrap();
        // Reference: pull rows and dot on the client.
        for (k, &(i, j)) in pairs.iter().enumerate() {
            let a = &u.pull_rows(&c, &[i]).unwrap()[0];
            let b = &v.pull_rows(&c, &[j]).unwrap()[0];
            let want: f64 = a.iter().zip(b).map(|(x, y)| *x as f64 * *y as f64).sum();
            assert!((server_side[k] - want).abs() < 1e-6, "pair {k}");
        }
    }

    #[test]
    fn dot_pairs_self_is_norm_squared() {
        let ps = ps();
        let c = NodeClock::new();
        let u = ColMatrixHandle::create(&ps, "u", 4, 5, RecoveryMode::Inconsistent).unwrap();
        u.push_add_rows(&c, &[1], &[vec![2.0; 5]]).unwrap();
        let d = u.dot_pairs(&c, &u, &[(1, 1)]).unwrap();
        assert!((d[0] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn axpy_pairs_updates_server_side() {
        let ps = ps();
        let c = NodeClock::new();
        let u = ColMatrixHandle::create(&ps, "u", 4, 6, RecoveryMode::Inconsistent).unwrap();
        u.push_add_rows(&c, &[0], &[vec![1.0; 6]]).unwrap();
        u.push_add_rows(&c, &[1], &[vec![2.0; 6]]).unwrap();
        // u[0] += 0.5 * u[1] → 2.0; both sides pre-update values.
        u.axpy_pairs(&c, &u.clone(), &[(0, 1, 0.5)]).unwrap();
        assert_eq!(u.pull_rows(&c, &[0]).unwrap()[0], vec![2.0f32; 6]);
        assert_eq!(u.pull_rows(&c, &[1]).unwrap()[0], vec![2.0f32; 6]);
    }

    #[test]
    fn axpy_cross_matrix() {
        let ps = ps();
        let c = NodeClock::new();
        let u = ColMatrixHandle::create(&ps, "u", 4, 6, RecoveryMode::Inconsistent).unwrap();
        let ctx = ColMatrixHandle::create(&ps, "ctx", 4, 6, RecoveryMode::Inconsistent).unwrap();
        ctx.push_add_rows(&c, &[3], &[vec![4.0; 6]]).unwrap();
        u.axpy_pairs(&c, &ctx, &[(2, 3, -0.25)]).unwrap();
        assert_eq!(u.pull_rows(&c, &[2]).unwrap()[0], vec![-1.0f32; 6]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let ps = ps();
        let c = NodeClock::new();
        let a = ColMatrixHandle::create(&ps, "a", 4, 6, RecoveryMode::Inconsistent).unwrap();
        let b = ColMatrixHandle::create(&ps, "b", 4, 8, RecoveryMode::Inconsistent).unwrap();
        assert!(a.dot_pairs(&c, &b, &[(0, 0)]).is_err());
        assert!(a.axpy_pairs(&c, &b, &[(0, 0, 1.0)]).is_err());
        assert!(a.pull_rows(&c, &[4]).is_err());
        assert!(a.push_add_rows(&c, &[0], &[vec![0.0; 5]]).is_err());
    }

    #[test]
    fn dot_pairs_cheaper_than_pull_rows_in_sim_time() {
        // The §IV-D optimization: server-side dots move O(pairs) bytes,
        // pulling whole embeddings moves O(pairs × dim) bytes.
        let ps = Ps::new(PsConfig { servers: 4, ..Default::default() });
        let dim = 256;
        let u = ColMatrixHandle::create(&ps, "u", 1000, dim, RecoveryMode::Inconsistent).unwrap();
        let init = NodeClock::new();
        u.init_uniform(&init, 7, 0.5).unwrap();
        let pairs: Vec<(u64, u64)> = (0..500).map(|i| (i % 1000, (i * 7) % 1000)).collect();
        let c1 = NodeClock::new();
        u.dot_pairs(&c1, &u.clone(), &pairs).unwrap();
        let c2 = NodeClock::new();
        let ids: Vec<u64> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        u.pull_rows(&c2, &ids).unwrap();
        assert!(
            c1.now() < c2.now(),
            "psFunc dots ({}) should beat row pulls ({})",
            c1.now(),
            c2.now()
        );
    }

    #[test]
    fn checkpoint_restore_colmatrix() {
        let ps = ps();
        let c = NodeClock::new();
        let dfs = Dfs::in_memory();
        let u = ColMatrixHandle::create(&ps, "u", 6, 6, RecoveryMode::Inconsistent).unwrap();
        u.init_uniform(&c, 5, 1.0).unwrap();
        let before = u.pull_rows(&c, &[0, 5]).unwrap();
        ps.checkpoint(&dfs, "u").unwrap();
        ps.kill_server(1);
        ps.restart_server(1, c.now());
        ps.recover_server(1, &dfs, &c).unwrap();
        assert_eq!(u.pull_rows(&c, &[0, 5]).unwrap(), before);
    }

    #[test]
    fn colpart_encode_decode() {
        let p = ColPart { col_start: 2, col_end: 4, data: vec![1.0, 2.0, 3.0, 4.0] };
        assert_eq!(ColPart::decode(&p.encode()).unwrap(), p);
        assert!(ColPart::decode(&[1, 2, 3]).is_err());
    }
}
