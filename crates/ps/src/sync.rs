//! Synchronization protocols (paper §II-D, §III-A): BSP and ASP.
//!
//! In BSP every superstep ends with a barrier: the global clock jumps to
//! the slowest participant and all participants re-synchronize. In ASP the
//! barrier is skipped — executor timelines drift, and the superstep's
//! *makespan* contribution is only what the caller later observes via the
//! slowest node. The controller also implements the blocking behaviour
//! used during failure recovery ("the other executors are blocked by the
//! synchronization controller of PS", §III-C).

use psgraph_sim::{ClusterClock, NodeClock, SimTime};

/// The synchronization protocol for a training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// Bulk-synchronous: barrier after every superstep.
    #[default]
    Bsp,
    /// Asynchronous: no barrier; stragglers don't block peers.
    Asp,
}

/// Superstep synchronization controller.
#[derive(Debug, Clone, Copy, Default)]
pub struct SyncController {
    pub mode: SyncMode,
}

impl SyncController {
    pub fn new(mode: SyncMode) -> Self {
        SyncController { mode }
    }

    /// Close a superstep over `workers`. BSP barriers (returns the barrier
    /// time); ASP leaves clocks untouched and returns the current max so
    /// callers can still report progress.
    pub fn end_superstep<'a, I>(&self, clock: &ClusterClock, workers: I) -> SimTime
    where
        I: IntoIterator<Item = &'a NodeClock> + Clone,
    {
        match self.mode {
            SyncMode::Bsp => clock.barrier(workers),
            SyncMode::Asp => {
                let mut max = clock.now();
                for w in workers {
                    max = max.max(w.now());
                }
                max
            }
        }
    }

    /// Block `workers` until simulated time `until` (failure recovery:
    /// healthy executors wait at the barrier while a peer restarts).
    pub fn block_until<'a, I>(&self, clock: &ClusterClock, workers: I, until: SimTime)
    where
        I: IntoIterator<Item = &'a NodeClock>,
    {
        clock.advance(until.saturating_sub(clock.now()));
        for w in workers {
            w.sync_to(until);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsp_barriers_workers() {
        let ctrl = SyncController::new(SyncMode::Bsp);
        let clock = ClusterClock::new();
        let a = NodeClock::new();
        let b = NodeClock::new();
        a.advance(SimTime::from_secs(1));
        b.advance(SimTime::from_secs(5));
        let t = ctrl.end_superstep(&clock, [&a, &b]);
        assert_eq!(t, SimTime::from_secs(5));
        assert_eq!(a.now(), SimTime::from_secs(5));
        assert_eq!(clock.now(), SimTime::from_secs(5));
    }

    #[test]
    fn asp_leaves_clocks_drifting() {
        let ctrl = SyncController::new(SyncMode::Asp);
        let clock = ClusterClock::new();
        let a = NodeClock::new();
        let b = NodeClock::new();
        a.advance(SimTime::from_secs(1));
        b.advance(SimTime::from_secs(5));
        let t = ctrl.end_superstep(&clock, [&a, &b]);
        assert_eq!(t, SimTime::from_secs(5), "reports the max");
        assert_eq!(a.now(), SimTime::from_secs(1), "but does not block a");
        assert_eq!(clock.now(), SimTime::ZERO);
    }

    #[test]
    fn asp_faster_than_bsp_with_straggler() {
        // Three supersteps where worker b is a straggler in step 0 only.
        // Under BSP, a inherits b's delay at every barrier; under ASP, a
        // finishes on its own timeline.
        let run = |mode: SyncMode| {
            let ctrl = SyncController::new(mode);
            let clock = ClusterClock::new();
            let a = NodeClock::new();
            let b = NodeClock::new();
            for step in 0..3 {
                a.advance(SimTime::from_secs(1));
                b.advance(SimTime::from_secs(if step == 0 { 10 } else { 1 }));
                ctrl.end_superstep(&clock, [&a, &b]);
            }
            a.now()
        };
        assert!(run(SyncMode::Asp) < run(SyncMode::Bsp));
    }

    #[test]
    fn block_until_holds_everyone() {
        let ctrl = SyncController::default();
        let clock = ClusterClock::new();
        let a = NodeClock::new();
        a.advance(SimTime::from_secs(2));
        ctrl.block_until(&clock, [&a], SimTime::from_secs(30));
        assert_eq!(a.now(), SimTime::from_secs(30));
        assert_eq!(clock.now(), SimTime::from_secs(30));
        // Blocking to the past is a no-op.
        ctrl.block_until(&clock, [&a], SimTime::from_secs(1));
        assert_eq!(a.now(), SimTime::from_secs(30));
    }

    #[test]
    fn default_mode_is_bsp() {
        assert_eq!(SyncMode::default(), SyncMode::Bsp);
    }
}
