//! Server-resident vectors: the PS data structure behind PageRank's
//! `ranks`/`Δranks`, K-Core's coreness, and Fast Unfolding's
//! `vertex2com`/`com2weight` (paper §IV).
//!
//! A vector of logical size `n` is split by a [`PartitionLayout`]: range
//! partitions store dense slices, hash partitions store sparse maps whose
//! missing keys read as `E::default()`.

use psgraph_sim::bytes::{Buf, BufMut};
use psgraph_sim::{FxHashMap, NodeClock};
use std::marker::PhantomData;
use std::sync::Arc;

use crate::element::Element;
use crate::error::{PsError, Result};
use crate::partition::{PartitionLayout, Partitioner};
use crate::ps::{ObjectOps, Ps, RecoveryMode};
use crate::server::PsServer;

/// One stored vector partition.
#[derive(Debug, Clone, PartialEq)]
pub enum VecPart<E> {
    /// Contiguous slice `[start, start + data.len())` of the vector.
    Dense { start: u64, data: Vec<E> },
    /// Sparse subset; absent keys are `E::default()`.
    Sparse { map: FxHashMap<u64, E> },
}

impl<E: Element> VecPart<E> {
    fn approx_bytes(&self) -> u64 {
        match self {
            VecPart::Dense { data, .. } => (data.len() * E::WIDTH) as u64 + 32,
            VecPart::Sparse { map } => (map.len() * (8 + E::WIDTH + 16)) as u64 + 32,
        }
    }

    fn get(&self, key: u64) -> E {
        match self {
            VecPart::Dense { start, data } => data[(key - start) as usize],
            VecPart::Sparse { map } => map.get(&key).copied().unwrap_or_default(),
        }
    }

    fn add(&mut self, key: u64, delta: E) {
        match self {
            VecPart::Dense { start, data } => {
                let i = (key - *start) as usize;
                data[i] = data[i].add(delta);
            }
            VecPart::Sparse { map } => {
                let e = map.entry(key).or_default();
                *e = e.add(delta);
            }
        }
    }

    fn set(&mut self, key: u64, value: E) {
        match self {
            VecPart::Dense { start, data } => data[(key - *start) as usize] = value,
            VecPart::Sparse { map } => {
                map.insert(key, value);
            }
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            VecPart::Dense { start, data } => {
                buf.put_u8(0);
                buf.put_u64_le(*start);
                buf.put_u64_le(data.len() as u64);
                for v in data {
                    v.encode(&mut buf);
                }
            }
            VecPart::Sparse { map } => {
                buf.put_u8(1);
                buf.put_u64_le(map.len() as u64);
                let mut entries: Vec<_> = map.iter().collect();
                entries.sort_by_key(|(k, _)| **k); // deterministic checkpoints
                for (k, v) in entries {
                    buf.put_u64_le(*k);
                    v.encode(&mut buf);
                }
            }
        }
        buf
    }

    fn decode(mut bytes: &[u8]) -> Result<Self> {
        let buf = &mut bytes;
        if buf.remaining() < 1 {
            return Err(PsError::Dfs("truncated vector checkpoint".into()));
        }
        match buf.get_u8() {
            0 => {
                let start = buf.get_u64_le();
                let len = buf.get_u64_le() as usize;
                let mut data = Vec::with_capacity(len);
                for _ in 0..len {
                    data.push(E::decode(buf));
                }
                Ok(VecPart::Dense { start, data })
            }
            1 => {
                let len = buf.get_u64_le() as usize;
                let mut map = FxHashMap::default();
                map.reserve(len);
                for _ in 0..len {
                    let k = buf.get_u64_le();
                    map.insert(k, E::decode(buf));
                }
                Ok(VecPart::Sparse { map })
            }
            t => Err(PsError::Dfs(format!("bad vector partition tag {t}"))),
        }
    }
}

/// Typed client handle to a PS vector.
pub struct VectorHandle<E: Element> {
    ps: Arc<Ps>,
    name: String,
    layout: PartitionLayout,
    _e: PhantomData<fn() -> E>,
}

impl<E: Element> Clone for VectorHandle<E> {
    fn clone(&self) -> Self {
        VectorHandle {
            ps: Arc::clone(&self.ps),
            name: self.name.clone(),
            layout: self.layout.clone(),
            _e: PhantomData,
        }
    }
}

impl<E: Element> std::fmt::Debug for VectorHandle<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VectorHandle")
            .field("name", &self.name)
            .field("size", &self.layout.size)
            .finish()
    }
}

struct VectorOps<E: Element> {
    name: String,
    layout: PartitionLayout,
    recovery: RecoveryMode,
    _e: PhantomData<fn() -> E>,
}

impl<E: Element> ObjectOps for VectorOps<E> {
    fn name(&self) -> &str {
        &self.name
    }

    fn layout(&self) -> &PartitionLayout {
        &self.layout
    }

    fn recovery_mode(&self) -> RecoveryMode {
        self.recovery
    }

    fn encode_partition(&self, server: &PsServer, partition: usize) -> Result<Vec<u8>> {
        server.get(&self.name, partition, |p: &VecPart<E>| p.encode())
    }

    fn decode_partition(&self, server: &PsServer, partition: usize, bytes: &[u8]) -> Result<()> {
        let part = VecPart::<E>::decode(bytes)?;
        let size = part.approx_bytes();
        server.insert(&self.name, partition, part, size)
    }
}

impl<E: Element> VectorHandle<E> {
    /// Create a zero-initialized vector of logical size `size`, partitioned
    /// by `partitioner` with one partition per server.
    pub fn create(
        ps: &Arc<Ps>,
        name: impl Into<String>,
        size: u64,
        partitioner: Partitioner,
        recovery: RecoveryMode,
    ) -> Result<Self> {
        let name = name.into();
        let layout =
            PartitionLayout::new(partitioner, size, ps.num_servers(), ps.num_servers());
        let handle = VectorHandle {
            ps: Arc::clone(ps),
            name: name.clone(),
            layout: layout.clone(),
            _e: PhantomData,
        };
        for p in 0..layout.num_partitions {
            let server = ps.server(layout.server_of_partition(p));
            let part = match layout.range_of(p) {
                Some((start, end)) => VecPart::Dense {
                    start,
                    data: vec![E::default(); (end - start) as usize],
                },
                None => VecPart::Sparse { map: FxHashMap::default() },
            };
            let bytes = part.approx_bytes();
            server.insert(&name, p, part, bytes)?;
        }
        ps.register(Arc::new(VectorOps::<E> {
            name,
            layout,
            recovery,
            _e: PhantomData,
        }));
        Ok(handle)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn size(&self) -> u64 {
        self.layout.size
    }

    pub fn layout(&self) -> &PartitionLayout {
        &self.layout
    }

    /// Per-partition write versions (see [`PsServer::version`]) — the
    /// change detector snapshot delta export compares against.
    pub fn partition_versions(&self) -> Result<Vec<u64>> {
        (0..self.layout.num_partitions)
            .map(|p| {
                self.ps
                    .server(self.layout.server_of_partition(p))
                    .version(&self.name, p)
            })
            .collect()
    }

    fn check_indices(&self, indices: &[u64]) -> Result<()> {
        for &i in indices {
            if i >= self.layout.size {
                return Err(PsError::IndexOutOfBounds {
                    name: self.name.clone(),
                    index: i,
                    size: self.layout.size,
                });
            }
        }
        Ok(())
    }

    /// Group positions of `indices` by (server, partition).
    fn group(&self, indices: &[u64]) -> FxHashMap<usize, FxHashMap<usize, Vec<usize>>> {
        let mut groups: FxHashMap<usize, FxHashMap<usize, Vec<usize>>> = FxHashMap::default();
        for (pos, &k) in indices.iter().enumerate() {
            let p = self.layout.partition_of(k);
            let s = self.layout.server_of_partition(p);
            groups.entry(s).or_default().entry(p).or_default().push(pos);
        }
        groups
    }

    fn charge_rpc(
        &self,
        client: &NodeClock,
        server: &PsServer,
        req_bytes: u64,
        items: u64,
        resp_bytes: u64,
    ) {
        self.ps.network().rpc(
            client,
            server.port(),
            req_bytes,
            items * self.ps.config().ops_per_item,
            resp_bytes,
        );
    }

    /// Pull `indices` (any order, duplicates allowed); result aligns with
    /// the input.
    pub fn pull(&self, client: &NodeClock, indices: &[u64]) -> Result<Vec<E>> {
        self.check_indices(indices)?;
        let mut out = vec![E::default(); indices.len()];
        for (s, parts) in self.group(indices) {
            let server = self.ps.server(s);
            server.ensure_alive()?;
            let n: usize = parts.values().map(Vec::len).sum();
            self.charge_rpc(client, server, n as u64 * 8, n as u64, (n * E::WIDTH) as u64);
            for (p, positions) in parts {
                server.get(&self.name, p, |part: &VecPart<E>| {
                    for &pos in &positions {
                        out[pos] = part.get(indices[pos]);
                    }
                })?;
            }
        }
        Ok(out)
    }

    /// Like [`VectorHandle::pull`], but the servers send only the nonzero
    /// entries plus a presence bitmap — the §IV-A sparsity optimization
    /// ("the ranks of many vertices barely change … transferring the
    /// increments of ranks"). Same result as `pull`; only the charged
    /// response bytes differ.
    pub fn pull_sparse(&self, client: &NodeClock, indices: &[u64]) -> Result<Vec<E>> {
        self.check_indices(indices)?;
        let mut out = vec![E::default(); indices.len()];
        for (s, parts) in self.group(indices) {
            let server = self.ps.server(s);
            server.ensure_alive()?;
            let mut nonzero = 0u64;
            for (p, positions) in parts {
                server.get(&self.name, p, |part: &VecPart<E>| {
                    for &pos in &positions {
                        let v = part.get(indices[pos]);
                        if v != E::default() {
                            nonzero += 1;
                        }
                        out[pos] = v;
                    }
                })?;
            }
            let n = out.len() as u64;
            self.charge_rpc(
                client,
                server,
                n * 8,
                n,
                nonzero * E::WIDTH as u64 + n / 8 + 8,
            );
        }
        Ok(out)
    }

    /// Add `values[i]` into position `indices[i]` (the `push`+`add`
    /// operator of §III-A).
    pub fn push_add(&self, client: &NodeClock, indices: &[u64], values: &[E]) -> Result<()> {
        self.push_with(client, indices, values, |part, k, v| part.add(k, v))
    }

    /// Overwrite positions (the `push`+`set` operator).
    pub fn push_set(&self, client: &NodeClock, indices: &[u64], values: &[E]) -> Result<()> {
        self.push_with(client, indices, values, |part, k, v| part.set(k, v))
    }

    fn push_with(
        &self,
        client: &NodeClock,
        indices: &[u64],
        values: &[E],
        apply: impl Fn(&mut VecPart<E>, u64, E),
    ) -> Result<()> {
        if indices.len() != values.len() {
            return Err(PsError::DimensionMismatch(format!(
                "{}: {} indices vs {} values",
                self.name,
                indices.len(),
                values.len()
            )));
        }
        self.check_indices(indices)?;
        for (s, parts) in self.group(indices) {
            let server = self.ps.server(s);
            server.ensure_alive()?;
            let n: usize = parts.values().map(Vec::len).sum();
            self.charge_rpc(client, server, (n * (8 + E::WIDTH)) as u64, n as u64, 8);
            for (p, positions) in parts {
                server.update_resize(&self.name, p, |part: &mut VecPart<E>, _old| {
                    for &pos in &positions {
                        apply(part, indices[pos], values[pos]);
                    }
                    ((), part.approx_bytes())
                })?;
            }
        }
        Ok(())
    }

    /// Pull the entire vector (bulk, one RPC per partition).
    pub fn pull_all(&self, client: &NodeClock) -> Result<Vec<E>> {
        let mut out = vec![E::default(); self.layout.size as usize];
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            server.ensure_alive()?;
            let n = server.get(&self.name, p, |part: &VecPart<E>| match part {
                VecPart::Dense { start, data } => {
                    out[*start as usize..*start as usize + data.len()].copy_from_slice(data);
                    data.len()
                }
                VecPart::Sparse { map } => {
                    for (&k, &v) in map {
                        out[k as usize] = v;
                    }
                    map.len()
                }
            })?;
            self.charge_rpc(client, server, 16, n as u64, (n * E::WIDTH) as u64);
        }
        Ok(out)
    }

    /// Server-side fill. For sparse partitions a non-default fill is
    /// rejected (no enumerable key set).
    pub fn fill(&self, client: &NodeClock, value: E) -> Result<()> {
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            server.ensure_alive()?;
            let n = server.update_resize(&self.name, p, |part: &mut VecPart<E>, old| {
                let n = match part {
                    VecPart::Dense { data, .. } => {
                        data.fill(value);
                        data.len()
                    }
                    VecPart::Sparse { map } => {
                        if value == E::default() {
                            let n = map.len();
                            map.clear();
                            n
                        } else {
                            let err = PsError::DimensionMismatch(format!(
                                "{}: non-default fill on sparse partition",
                                self.name
                            ));
                            return (Err(err), old);
                        }
                    }
                };
                (Ok(n), part.approx_bytes())
            })??;
            self.charge_rpc(client, server, 16, n as u64, 8);
        }
        Ok(())
    }

    /// Server-side `self += other; other := 0` — the PageRank step 4 of
    /// §IV-A ("PS adds Δranks to ranks and resets Δranks to zero"),
    /// executed entirely on the servers without moving the vectors.
    pub fn accumulate_and_reset(&self, client: &NodeClock, delta: &VectorHandle<E>) -> Result<()> {
        if self.layout != delta.layout {
            return Err(PsError::DimensionMismatch(format!(
                "{} and {} have different layouts",
                self.name, delta.name
            )));
        }
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            server.ensure_alive()?;
            // Take the delta partition's contents, zeroing it.
            let drained: Vec<(u64, E)> =
                server.update_resize(&delta.name, p, |part: &mut VecPart<E>, _old| {
                    let drained = match part {
                        VecPart::Dense { start, data } => {
                            let d: Vec<(u64, E)> = data
                                .iter()
                                .enumerate()
                                .filter(|(_, v)| **v != E::default())
                                .map(|(i, v)| (*start + i as u64, *v))
                                .collect();
                            data.fill(E::default());
                            d
                        }
                        VecPart::Sparse { map } => map.drain().collect(),
                    };
                    (drained, part.approx_bytes())
                })?;
            let n = drained.len();
            server.update_resize(&self.name, p, |part: &mut VecPart<E>, _old| {
                for (k, v) in drained {
                    part.add(k, v);
                }
                ((), part.approx_bytes())
            })?;
            self.charge_rpc(client, server, 16, 2 * n as u64, 8);
        }
        Ok(())
    }

    /// Server-side aggregate: `Σ f(value)` over all stored entries
    /// (dense: every slot; sparse: the present keys). Used for
    /// convergence checks (e.g. `Σ |Δrank|`).
    pub fn aggregate(&self, client: &NodeClock, f: impl Fn(E) -> f64) -> Result<f64> {
        let mut total = 0.0;
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            server.ensure_alive()?;
            let (part_sum, n) = server.get(&self.name, p, |part: &VecPart<E>| match part {
                VecPart::Dense { data, .. } => {
                    (data.iter().map(|&v| f(v)).sum::<f64>(), data.len())
                }
                VecPart::Sparse { map } => {
                    (map.values().map(|&v| f(v)).sum::<f64>(), map.len())
                }
            })?;
            self.charge_rpc(client, server, 16, n as u64, 8);
            total += part_sum;
        }
        Ok(total)
    }

    /// Crate-internal: the owning PS (psFunc machinery reaches its pool).
    pub(crate) fn owner_ps(&self) -> &Arc<Ps> {
        &self.ps
    }

    /// Crate-internal: mutate one partition in place on its server
    /// (footprint re-measured afterwards). Used by the psFunc machinery.
    pub(crate) fn with_partition_mut<R>(
        &self,
        p: usize,
        f: impl FnOnce(&mut VecPart<E>) -> R,
    ) -> Result<R> {
        let server = self.ps.server(self.layout.server_of_partition(p));
        server.ensure_alive()?;
        server.update_resize(&self.name, p, |part: &mut VecPart<E>, _old| {
            let r = f(part);
            let bytes = part.approx_bytes();
            (r, bytes)
        })
    }

    /// Crate-internal: charge one RPC against a server by index.
    pub(crate) fn charge_server_rpc(
        &self,
        client: &NodeClock,
        server_idx: usize,
        req_bytes: u64,
        items: u64,
        resp_bytes: u64,
    ) {
        let server = self.ps.server(server_idx);
        self.charge_rpc(client, server, req_bytes, items, resp_bytes);
    }

    /// Bytes resident on the servers for this vector.
    pub fn resident_bytes(&self) -> Result<u64> {
        let mut total = 0;
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            total += server.get(&self.name, p, |part: &VecPart<E>| part.approx_bytes())?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ps::PsConfig;
    use psgraph_dfs::Dfs;

    fn ps() -> Arc<Ps> {
        Ps::new(PsConfig { servers: 3, ..Default::default() })
    }

    fn client() -> NodeClock {
        NodeClock::new()
    }

    #[test]
    fn create_pull_push_roundtrip_range() {
        let ps = ps();
        let c = client();
        let v = VectorHandle::<f64>::create(
            &ps, "ranks", 100, Partitioner::Range, RecoveryMode::Consistent,
        )
        .unwrap();
        assert_eq!(v.pull(&c, &[0, 50, 99]).unwrap(), vec![0.0, 0.0, 0.0]);
        v.push_add(&c, &[0, 50, 99], &[1.0, 2.0, 3.0]).unwrap();
        v.push_add(&c, &[50], &[0.5]).unwrap();
        assert_eq!(v.pull(&c, &[99, 0, 50]).unwrap(), vec![3.0, 1.0, 2.5]);
    }

    #[test]
    fn hash_partitioned_sparse_vector() {
        let ps = ps();
        let c = client();
        let v = VectorHandle::<u64>::create(
            &ps, "coreness", 1000, Partitioner::Hash, RecoveryMode::Inconsistent,
        )
        .unwrap();
        v.push_set(&c, &[7, 999, 13], &[70, 9990, 130]).unwrap();
        assert_eq!(v.pull(&c, &[999, 13, 7, 5]).unwrap(), vec![9990, 130, 70, 0]);
    }

    #[test]
    fn push_set_overwrites() {
        let ps = ps();
        let c = client();
        let v = VectorHandle::<f64>::create(
            &ps, "x", 10, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        v.push_add(&c, &[3], &[5.0]).unwrap();
        v.push_set(&c, &[3], &[1.0]).unwrap();
        assert_eq!(v.pull(&c, &[3]).unwrap(), vec![1.0]);
    }

    #[test]
    fn pull_all_and_fill() {
        let ps = ps();
        let c = client();
        let v = VectorHandle::<f64>::create(
            &ps, "v", 20, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        v.fill(&c, 2.5).unwrap();
        let all = v.pull_all(&c).unwrap();
        assert_eq!(all.len(), 20);
        assert!(all.iter().all(|&x| x == 2.5));
    }

    #[test]
    fn sparse_fill_default_clears() {
        let ps = ps();
        let c = client();
        let v = VectorHandle::<f64>::create(
            &ps, "s", 100, Partitioner::Hash, RecoveryMode::Inconsistent,
        )
        .unwrap();
        v.push_set(&c, &[1, 2, 3], &[1.0, 2.0, 3.0]).unwrap();
        v.fill(&c, 0.0).unwrap();
        assert_eq!(v.pull(&c, &[1, 2, 3]).unwrap(), vec![0.0, 0.0, 0.0]);
        // Non-default sparse fill rejected.
        assert!(v.fill(&c, 1.0).is_err());
    }

    #[test]
    fn out_of_bounds_rejected() {
        let ps = ps();
        let c = client();
        let v = VectorHandle::<f64>::create(
            &ps, "v", 10, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        assert!(matches!(
            v.pull(&c, &[10]),
            Err(PsError::IndexOutOfBounds { index: 10, .. })
        ));
        assert!(v.push_add(&c, &[99], &[1.0]).is_err());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let ps = ps();
        let c = client();
        let v = VectorHandle::<f64>::create(
            &ps, "v", 10, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        assert!(matches!(
            v.push_add(&c, &[1, 2], &[1.0]),
            Err(PsError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn accumulate_and_reset_matches_paper_step() {
        let ps = ps();
        let c = client();
        let ranks = VectorHandle::<f64>::create(
            &ps, "ranks", 50, Partitioner::Range, RecoveryMode::Consistent,
        )
        .unwrap();
        let delta = VectorHandle::<f64>::create(
            &ps, "dranks", 50, Partitioner::Range, RecoveryMode::Consistent,
        )
        .unwrap();
        delta.push_add(&c, &[0, 25, 49], &[1.0, 2.0, 3.0]).unwrap();
        ranks.accumulate_and_reset(&c, &delta).unwrap();
        assert_eq!(ranks.pull(&c, &[0, 25, 49]).unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(delta.pull(&c, &[0, 25, 49]).unwrap(), vec![0.0, 0.0, 0.0]);
        // Second accumulate is a no-op (delta was reset).
        ranks.accumulate_and_reset(&c, &delta).unwrap();
        assert_eq!(ranks.pull(&c, &[0]).unwrap(), vec![1.0]);
    }

    #[test]
    fn aggregate_sums_server_side() {
        let ps = ps();
        let c = client();
        let v = VectorHandle::<f64>::create(
            &ps, "v", 30, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        v.push_add(&c, &[0, 10, 29], &[-1.0, 2.0, -3.0]).unwrap();
        let s = v.aggregate(&c, |x| x.abs()).unwrap();
        assert!((s - 6.0).abs() < 1e-12);
    }

    #[test]
    fn operations_cost_simulated_time() {
        let ps = ps();
        let c = client();
        let v = VectorHandle::<f64>::create(
            &ps, "v", 1000, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        let t0 = c.now();
        let idx: Vec<u64> = (0..1000).collect();
        v.pull(&c, &idx).unwrap();
        assert!(c.now() > t0);
    }

    #[test]
    fn dead_server_fails_pull() {
        let ps = ps();
        let c = client();
        let v = VectorHandle::<f64>::create(
            &ps, "v", 30, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        ps.kill_server(0);
        let err = v.pull_all(&c).unwrap_err();
        assert!(matches!(err, PsError::ServerDown { id: 0 }));
    }

    #[test]
    fn checkpoint_and_recover_failed_server() {
        let ps = ps();
        let c = client();
        let dfs = Dfs::in_memory();
        let v = VectorHandle::<f64>::create(
            &ps, "v", 90, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        let idx: Vec<u64> = (0..90).collect();
        let vals: Vec<f64> = (0..90).map(|i| i as f64).collect();
        v.push_set(&c, &idx, &vals).unwrap();
        ps.checkpoint_all(&dfs).unwrap();
        // Lose server 1 after further (uncheckpointed) updates.
        v.push_add(&c, &[0], &[100.0]).unwrap();
        ps.kill_server(1);
        ps.restart_server(1, c.now());
        ps.recover_server(1, &dfs, &c).unwrap();
        let all = v.pull_all(&c).unwrap();
        // Server 1's partition restored from checkpoint…
        assert_eq!(all[30], 30.0);
        assert_eq!(all[59], 59.0);
        // …while inconsistency-tolerant recovery kept server 0's later
        // update (index 0 lives on server 0).
        assert_eq!(all[0], 100.0);
    }

    #[test]
    fn consistent_recovery_rolls_everyone_back() {
        let ps = ps();
        let c = client();
        let dfs = Dfs::in_memory();
        let v = VectorHandle::<f64>::create(
            &ps, "ranks", 90, Partitioner::Range, RecoveryMode::Consistent,
        )
        .unwrap();
        v.push_set(&c, &[0, 40, 80], &[1.0, 2.0, 3.0]).unwrap();
        ps.checkpoint_all(&dfs).unwrap();
        v.push_add(&c, &[0, 40, 80], &[10.0, 10.0, 10.0]).unwrap();
        ps.kill_server(2);
        ps.restart_server(2, c.now());
        ps.recover_server(2, &dfs, &c).unwrap();
        // All partitions rolled back to checkpoint values.
        assert_eq!(v.pull(&c, &[0, 40, 80]).unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn recovery_without_checkpoint_fails() {
        let ps = ps();
        let c = client();
        let dfs = Dfs::in_memory();
        let _v = VectorHandle::<f64>::create(
            &ps, "v", 30, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        ps.kill_server(0);
        ps.restart_server(0, c.now());
        assert!(matches!(
            ps.recover_server(0, &dfs, &c),
            Err(PsError::NoCheckpoint(_))
        ));
    }

    #[test]
    fn vecpart_encode_decode_roundtrip() {
        let dense: VecPart<f64> = VecPart::Dense { start: 10, data: vec![1.0, -2.0, 3.5] };
        assert_eq!(VecPart::<f64>::decode(&dense.encode()).unwrap(), dense);
        let mut map = FxHashMap::default();
        map.insert(5u64, 7u64);
        map.insert(99, 1);
        let sparse: VecPart<u64> = VecPart::Sparse { map };
        assert_eq!(VecPart::<u64>::decode(&sparse.encode()).unwrap(), sparse);
        assert!(VecPart::<u64>::decode(&[]).is_err());
        assert!(VecPart::<u64>::decode(&[9]).is_err());
    }

    #[test]
    fn resident_bytes_reflects_content() {
        let ps = ps();
        let c = client();
        let v = VectorHandle::<f64>::create(
            &ps, "v", 1000, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        let r = v.resident_bytes().unwrap();
        assert!(r >= 8000, "dense vector should charge ≥ 8 B/slot, got {r}");
        assert!(ps.resident_bytes() >= r);
        drop(v);
        ps.unregister("v");
        assert_eq!(ps.resident_bytes(), 0);
        c.now(); // silence unused
    }
}
