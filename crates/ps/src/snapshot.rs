//! Read-optimized snapshots of trained PS state.
//!
//! Training leaves ranks/communities/embeddings/adjacency live on the
//! parameter servers; the serving tier (`psgraph-serve`) wants an
//! immutable, flat copy it can shard for read traffic. A
//! [`SnapshotWriter`] pulls each object through the normal client RPC
//! path (charging the exporting client's clock) and writes one flat file
//! per object plus a `MANIFEST` to the DFS:
//!
//! ```text
//! <dir>/MANIFEST            magic, entry count, per-entry (name, kind, rows, cols)
//! <dir>/<name>.snap         kind tag + shape + little-endian payload
//! ```
//!
//! Values are encoded bit-exactly (`to_bits`/`from_bits` for floats), so
//! export → load round-trips f32/f64 with no re-quantization — the serve
//! tier answers with exactly the numbers training produced.

use psgraph_dfs::Dfs;
use psgraph_sim::bytes::{Buf, BufMut};
use psgraph_sim::NodeClock;

use crate::colmatrix::ColMatrixHandle;
use crate::csr::CsrHandle;
use crate::error::{PsError, Result};
use crate::matrix::MatrixHandle;
use crate::neighbor::NeighborTableHandle;
use crate::vector::VectorHandle;

/// Manifest magic ("PSGSNAP2" as big-endian bytes — v2 added the
/// per-partition write versions that delta export diffs against).
const MAGIC: u64 = 0x5053_4753_4E41_5032;

/// Delta file magic ("PSGDLTA1" as big-endian bytes).
const DELTA_MAGIC: u64 = 0x5053_4744_4C54_4131;

/// Rows pulled per RPC when exporting matrices/adjacency (bounds the
/// transient client-side buffer, and matches how a real exporter would
/// stream).
const EXPORT_CHUNK: usize = 4096;

/// What one snapshot object holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    VecF64,
    VecU64,
    /// Row-major `rows × cols` f32 (from either a row- or
    /// column-partitioned matrix — the flat form is the same).
    MatF32,
    /// CSR adjacency: `rows + 1` offsets plus packed targets.
    Adjacency,
}

impl SnapshotKind {
    fn tag(self) -> u8 {
        match self {
            SnapshotKind::VecF64 => 0,
            SnapshotKind::VecU64 => 1,
            SnapshotKind::MatF32 => 2,
            SnapshotKind::Adjacency => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => SnapshotKind::VecF64,
            1 => SnapshotKind::VecU64,
            2 => SnapshotKind::MatF32,
            3 => SnapshotKind::Adjacency,
            t => return Err(PsError::Dfs(format!("unknown snapshot kind tag {t}"))),
        })
    }
}

/// One object in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    pub name: String,
    pub kind: SnapshotKind,
    pub rows: u64,
    /// 1 for vectors; the row width for matrices; unused for adjacency.
    pub cols: u32,
    /// The PS object's per-partition write versions at export time —
    /// [`DeltaWriter`] re-exports only the partitions whose version moved
    /// since this manifest.
    pub part_versions: Vec<u64>,
}

/// The snapshot directory listing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotManifest {
    pub entries: Vec<SnapshotEntry>,
}

impl SnapshotManifest {
    pub fn entry(&self, name: &str) -> Option<&SnapshotEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_u64_le(MAGIC);
        buf.put_u32_le(self.entries.len() as u32);
        for e in &self.entries {
            buf.put_u32_le(e.name.len() as u32);
            buf.extend_from_slice(e.name.as_bytes());
            buf.put_u8(e.kind.tag());
            buf.put_u64_le(e.rows);
            buf.put_u32_le(e.cols);
            buf.put_u32_le(e.part_versions.len() as u32);
            for &v in &e.part_versions {
                buf.put_u64_le(v);
            }
        }
        buf
    }

    fn decode(mut bytes: &[u8]) -> Result<Self> {
        let buf = &mut bytes;
        if buf.remaining() < 12 || buf.get_u64_le() != MAGIC {
            return Err(PsError::Dfs("bad snapshot manifest magic".into()));
        }
        let count = buf.get_u32_le() as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 4 {
                return Err(PsError::Dfs("truncated snapshot manifest".into()));
            }
            let name_len = buf.get_u32_le() as usize;
            if buf.remaining() < name_len + 17 {
                return Err(PsError::Dfs("truncated snapshot manifest".into()));
            }
            let name = String::from_utf8(buf[..name_len].to_vec())
                .map_err(|_| PsError::Dfs("non-UTF-8 snapshot object name".into()))?;
            buf.advance(name_len);
            let kind = SnapshotKind::from_tag(buf.get_u8())?;
            let rows = buf.get_u64_le();
            let cols = buf.get_u32_le();
            let n_parts = buf.get_u32_le() as usize;
            if buf.remaining() < n_parts * 8 {
                return Err(PsError::Dfs("truncated snapshot manifest".into()));
            }
            let part_versions = (0..n_parts).map(|_| buf.get_u64_le()).collect();
            entries.push(SnapshotEntry { name, kind, rows, cols, part_versions });
        }
        Ok(SnapshotManifest { entries })
    }

    /// Read the manifest of a snapshot directory.
    pub fn load(dfs: &Dfs, dir: &str, client: &NodeClock) -> Result<Self> {
        let bytes = dfs
            .read(&manifest_path(dir), client)
            .map_err(|e| PsError::Dfs(e.to_string()))?;
        Self::decode(&bytes)
    }
}

/// A decoded snapshot object.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotData {
    VecF64(Vec<f64>),
    VecU64(Vec<u64>),
    MatF32 { cols: usize, data: Vec<f32> },
    Adjacency { offsets: Vec<u64>, targets: Vec<u64> },
}

fn manifest_path(dir: &str) -> String {
    format!("{}/MANIFEST", dir.trim_end_matches('/'))
}

fn object_path(dir: &str, name: &str) -> String {
    format!("{}/{name}.snap", dir.trim_end_matches('/'))
}

/// Load one object of a snapshot, charging the read to `client`.
pub fn load_object(
    dfs: &Dfs,
    dir: &str,
    entry: &SnapshotEntry,
    client: &NodeClock,
) -> Result<SnapshotData> {
    let bytes = dfs
        .read(&object_path(dir, &entry.name), client)
        .map_err(|e| PsError::Dfs(e.to_string()))?;
    let mut slice: &[u8] = &bytes;
    let buf = &mut slice;
    if buf.remaining() < 13 {
        return Err(PsError::Dfs(format!("truncated snapshot object {}", entry.name)));
    }
    let kind = SnapshotKind::from_tag(buf.get_u8())?;
    let rows = buf.get_u64_le();
    let cols = buf.get_u32_le() as usize;
    if kind != entry.kind || rows != entry.rows || cols != entry.cols as usize {
        return Err(PsError::Dfs(format!(
            "snapshot object {} does not match its manifest entry",
            entry.name
        )));
    }
    let need = |buf: &&[u8], n: usize| -> Result<()> {
        if buf.remaining() < n {
            Err(PsError::Dfs(format!("truncated snapshot object {}", entry.name)))
        } else {
            Ok(())
        }
    };
    Ok(match kind {
        SnapshotKind::VecF64 => {
            need(buf, rows as usize * 8)?;
            SnapshotData::VecF64((0..rows).map(|_| buf.get_f64_le()).collect())
        }
        SnapshotKind::VecU64 => {
            need(buf, rows as usize * 8)?;
            SnapshotData::VecU64((0..rows).map(|_| buf.get_u64_le()).collect())
        }
        SnapshotKind::MatF32 => {
            let n = rows as usize * cols;
            need(buf, n * 4)?;
            SnapshotData::MatF32 { cols, data: (0..n).map(|_| buf.get_f32_le()).collect() }
        }
        SnapshotKind::Adjacency => {
            need(buf, (rows as usize + 1) * 8 + 8)?;
            let offsets: Vec<u64> = (0..=rows).map(|_| buf.get_u64_le()).collect();
            let n_tgt = buf.get_u64_le() as usize;
            need(buf, n_tgt * 8)?;
            let targets = (0..n_tgt).map(|_| buf.get_u64_le()).collect();
            SnapshotData::Adjacency { offsets, targets }
        }
    })
}

/// Exports live PS objects into a snapshot directory on the DFS.
pub struct SnapshotWriter<'a> {
    dfs: &'a Dfs,
    dir: String,
    client: &'a NodeClock,
    manifest: SnapshotManifest,
}

impl<'a> SnapshotWriter<'a> {
    pub fn new(dfs: &'a Dfs, dir: impl Into<String>, client: &'a NodeClock) -> Self {
        SnapshotWriter {
            dfs,
            dir: dir.into(),
            client,
            manifest: SnapshotManifest::default(),
        }
    }

    fn write_object(&mut self, entry: SnapshotEntry, payload: Vec<u8>) -> Result<()> {
        if self.manifest.entry(&entry.name).is_some() {
            return Err(PsError::Dfs(format!(
                "snapshot already contains an object named {}",
                entry.name
            )));
        }
        let mut bytes = Vec::with_capacity(13 + payload.len());
        bytes.put_u8(entry.kind.tag());
        bytes.put_u64_le(entry.rows);
        bytes.put_u32_le(entry.cols);
        bytes.extend_from_slice(&payload);
        self.dfs
            .write(&object_path(&self.dir, &entry.name), &bytes, self.client)
            .map_err(|e| PsError::Dfs(e.to_string()))?;
        self.manifest.entries.push(entry);
        Ok(())
    }

    /// Export a dense f64 vector (ranks, scores).
    pub fn vector_f64(&mut self, h: &VectorHandle<f64>) -> Result<()> {
        let part_versions = h.partition_versions()?;
        let values = h.pull_all(self.client)?;
        let mut payload = Vec::with_capacity(values.len() * 8);
        for v in &values {
            payload.put_f64_le(*v);
        }
        self.write_object(
            SnapshotEntry {
                name: h.name().to_string(),
                kind: SnapshotKind::VecF64,
                rows: values.len() as u64,
                cols: 1,
                part_versions,
            },
            payload,
        )
    }

    /// Export a dense u64 vector (community / label assignments).
    pub fn vector_u64(&mut self, h: &VectorHandle<u64>) -> Result<()> {
        let part_versions = h.partition_versions()?;
        let values = h.pull_all(self.client)?;
        let mut payload = Vec::with_capacity(values.len() * 8);
        for v in &values {
            payload.put_u64_le(*v);
        }
        self.write_object(
            SnapshotEntry {
                name: h.name().to_string(),
                kind: SnapshotKind::VecU64,
                rows: values.len() as u64,
                cols: 1,
                part_versions,
            },
            payload,
        )
    }

    /// Export a row-partitioned f32 matrix.
    pub fn matrix_f32(&mut self, h: &MatrixHandle<f32>) -> Result<()> {
        let part_versions = h.partition_versions()?;
        let rows = h.pull_all(self.client)?;
        let cols = rows.first().map_or(0, Vec::len);
        let mut payload = Vec::with_capacity(rows.len() * cols * 4);
        for row in &rows {
            for v in row {
                payload.put_f32_le(*v);
            }
        }
        self.write_object(
            SnapshotEntry {
                name: h.name().to_string(),
                kind: SnapshotKind::MatF32,
                rows: rows.len() as u64,
                cols: cols as u32,
                part_versions,
            },
            payload,
        )
    }

    /// Export a column-partitioned f32 matrix (LINE/GraphSage embeddings),
    /// gathering full rows in chunks through the normal pull path.
    pub fn colmatrix(&mut self, h: &ColMatrixHandle) -> Result<()> {
        let part_versions = h.partition_versions()?;
        let rows = h.rows();
        let cols = h.cols();
        let mut payload = Vec::with_capacity(rows as usize * cols * 4);
        let mut start = 0u64;
        while start < rows {
            let end = (start + EXPORT_CHUNK as u64).min(rows);
            let ids: Vec<u64> = (start..end).collect();
            for row in h.pull_rows(self.client, &ids)? {
                for v in &row {
                    payload.put_f32_le(*v);
                }
            }
            start = end;
        }
        self.write_object(
            SnapshotEntry {
                name: h.name().to_string(),
                kind: SnapshotKind::MatF32,
                rows,
                cols: cols as u32,
                part_versions,
            },
            payload,
        )
    }

    /// Export a CSR adjacency snapshot.
    pub fn adjacency(&mut self, h: &CsrHandle) -> Result<()> {
        let part_versions = h.partition_versions()?;
        let n = h.num_vertices();
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut targets: Vec<u64> = Vec::new();
        offsets.push(0u64);
        let mut start = 0u64;
        while start < n {
            let end = (start + EXPORT_CHUNK as u64).min(n);
            let ids: Vec<u64> = (start..end).collect();
            for ns in h.pull(self.client, &ids)? {
                targets.extend_from_slice(&ns);
                offsets.push(targets.len() as u64);
            }
            start = end;
        }
        let mut payload = Vec::with_capacity((offsets.len() + 1 + targets.len()) * 8);
        for &o in &offsets {
            payload.put_u64_le(o);
        }
        payload.put_u64_le(targets.len() as u64);
        for &t in &targets {
            payload.put_u64_le(t);
        }
        self.write_object(
            SnapshotEntry {
                name: h.name().to_string(),
                kind: SnapshotKind::Adjacency,
                rows: n,
                cols: 0,
                part_versions,
            },
            payload,
        )
    }

    /// Export a mutable neighbor table as a CSR adjacency snapshot (live
    /// lists only — tombstones never reach the file).
    pub fn neighbor_table(&mut self, h: &NeighborTableHandle) -> Result<()> {
        let part_versions = h.partition_versions()?;
        let n = h.num_vertices();
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut targets: Vec<u64> = Vec::new();
        offsets.push(0u64);
        let mut start = 0u64;
        while start < n {
            let end = (start + EXPORT_CHUNK as u64).min(n);
            let ids: Vec<u64> = (start..end).collect();
            for ns in h.pull(self.client, &ids)? {
                targets.extend_from_slice(&ns);
                offsets.push(targets.len() as u64);
            }
            start = end;
        }
        let mut payload = Vec::with_capacity((offsets.len() + 1 + targets.len()) * 8);
        for &o in &offsets {
            payload.put_u64_le(o);
        }
        payload.put_u64_le(targets.len() as u64);
        for &t in &targets {
            payload.put_u64_le(t);
        }
        self.write_object(
            SnapshotEntry {
                name: h.name().to_string(),
                kind: SnapshotKind::Adjacency,
                rows: n,
                cols: 0,
                part_versions,
            },
            payload,
        )
    }

    /// Write the manifest and return it. Must be called last — objects
    /// written after `finish` would not be listed.
    pub fn finish(self) -> Result<SnapshotManifest> {
        self.dfs
            .write(&manifest_path(&self.dir), &self.manifest.encode(), self.client)
            .map_err(|e| PsError::Dfs(e.to_string()))?;
        Ok(self.manifest)
    }
}

/// One contiguous region of changed data within a [`DeltaEntry`].
#[derive(Debug, Clone, PartialEq)]
pub enum PatchRegion {
    /// Replacement rows `[row_lo, row_lo + values.len())` of a f64 vector.
    RowsF64 { row_lo: u64, values: Vec<f64> },
    /// Replacement rows of a u64 vector.
    RowsU64 { row_lo: u64, values: Vec<u64> },
    /// Replacement column stripe `[col_lo, col_hi)` of *every* row
    /// (column partitioning means one dirty row dirties the whole
    /// stripe), row-major `rows × (col_hi - col_lo)`.
    Cols { col_lo: u32, col_hi: u32, data: Vec<f32> },
    /// Replacement CSR adjacency for rows
    /// `[row_lo, row_lo + offsets.len() - 1)`, offsets rebased to 0.
    Adj { row_lo: u64, offsets: Vec<u64>, targets: Vec<u64> },
    /// Replacement rows of a *row-partitioned* f32 matrix: full rows
    /// `[row_lo, row_lo + data.len() / cols)`, row-major (`cols` comes
    /// from the enclosing [`DeltaEntry`]).
    RowsF32 { row_lo: u64, data: Vec<f32> },
}

impl PatchRegion {
    fn tag(&self) -> u8 {
        match self {
            PatchRegion::RowsF64 { .. } => 0,
            PatchRegion::RowsU64 { .. } => 1,
            PatchRegion::Cols { .. } => 2,
            PatchRegion::Adj { .. } => 3,
            PatchRegion::RowsF32 { .. } => 4,
        }
    }
}

/// One object's changed partitions within a [`SnapshotDelta`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaEntry {
    pub name: String,
    pub kind: SnapshotKind,
    pub rows: u64,
    pub cols: u32,
    /// The object's per-partition versions *after* this delta — what the
    /// base manifest entry advances to once the delta is applied.
    pub part_versions: Vec<u64>,
    pub regions: Vec<PatchRegion>,
}

/// The partitions that changed since a base [`SnapshotManifest`]. Objects
/// with no changed partitions are omitted entirely — that is the point.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotDelta {
    pub entries: Vec<DeltaEntry>,
}

impl SnapshotDelta {
    pub fn entry(&self, name: &str) -> Option<&DeltaEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// The base manifest advanced past this delta: same objects, changed
    /// entries carrying the delta's versions. Feed the result to the next
    /// [`DeltaWriter`] so deltas chain.
    pub fn rebase(&self, base: &SnapshotManifest) -> SnapshotManifest {
        let mut next = base.clone();
        for e in &mut next.entries {
            if let Some(d) = self.entry(&e.name) {
                e.part_versions = d.part_versions.clone();
            }
        }
        next
    }

    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_u64_le(DELTA_MAGIC);
        buf.put_u32_le(self.entries.len() as u32);
        for e in &self.entries {
            buf.put_u32_le(e.name.len() as u32);
            buf.extend_from_slice(e.name.as_bytes());
            buf.put_u8(e.kind.tag());
            buf.put_u64_le(e.rows);
            buf.put_u32_le(e.cols);
            buf.put_u32_le(e.part_versions.len() as u32);
            for &v in &e.part_versions {
                buf.put_u64_le(v);
            }
            buf.put_u32_le(e.regions.len() as u32);
            for r in &e.regions {
                buf.put_u8(r.tag());
                match r {
                    PatchRegion::RowsF64 { row_lo, values } => {
                        buf.put_u64_le(*row_lo);
                        buf.put_u64_le(values.len() as u64);
                        for &x in values {
                            buf.put_f64_le(x);
                        }
                    }
                    PatchRegion::RowsU64 { row_lo, values } => {
                        buf.put_u64_le(*row_lo);
                        buf.put_u64_le(values.len() as u64);
                        for &x in values {
                            buf.put_u64_le(x);
                        }
                    }
                    PatchRegion::Cols { col_lo, col_hi, data } => {
                        buf.put_u32_le(*col_lo);
                        buf.put_u32_le(*col_hi);
                        buf.put_u64_le(data.len() as u64);
                        for &x in data {
                            buf.put_f32_le(x);
                        }
                    }
                    PatchRegion::Adj { row_lo, offsets, targets } => {
                        buf.put_u64_le(*row_lo);
                        buf.put_u64_le(offsets.len() as u64);
                        for &o in offsets {
                            buf.put_u64_le(o);
                        }
                        buf.put_u64_le(targets.len() as u64);
                        for &t in targets {
                            buf.put_u64_le(t);
                        }
                    }
                    PatchRegion::RowsF32 { row_lo, data } => {
                        buf.put_u64_le(*row_lo);
                        buf.put_u64_le(data.len() as u64);
                        for &x in data {
                            buf.put_f32_le(x);
                        }
                    }
                }
            }
        }
        buf
    }

    fn decode(mut bytes: &[u8]) -> Result<Self> {
        let buf = &mut bytes;
        let bad = || PsError::Dfs("truncated snapshot delta".into());
        if buf.remaining() < 12 || buf.get_u64_le() != DELTA_MAGIC {
            return Err(PsError::Dfs("bad snapshot delta magic".into()));
        }
        let need = |buf: &&[u8], n: usize| -> Result<()> {
            if buf.remaining() < n {
                Err(bad())
            } else {
                Ok(())
            }
        };
        let count = buf.get_u32_le() as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            need(buf, 4)?;
            let name_len = buf.get_u32_le() as usize;
            need(buf, name_len + 21)?;
            let name = String::from_utf8(buf[..name_len].to_vec())
                .map_err(|_| PsError::Dfs("non-UTF-8 delta object name".into()))?;
            buf.advance(name_len);
            let kind = SnapshotKind::from_tag(buf.get_u8())?;
            let rows = buf.get_u64_le();
            let cols = buf.get_u32_le();
            let n_parts = buf.get_u32_le() as usize;
            need(buf, n_parts * 8 + 4)?;
            let part_versions = (0..n_parts).map(|_| buf.get_u64_le()).collect();
            let n_regions = buf.get_u32_le() as usize;
            let mut regions = Vec::with_capacity(n_regions);
            for _ in 0..n_regions {
                need(buf, 1)?;
                regions.push(match buf.get_u8() {
                    0 => {
                        need(buf, 16)?;
                        let row_lo = buf.get_u64_le();
                        let len = buf.get_u64_le() as usize;
                        need(buf, len * 8)?;
                        let values = (0..len).map(|_| buf.get_f64_le()).collect();
                        PatchRegion::RowsF64 { row_lo, values }
                    }
                    1 => {
                        need(buf, 16)?;
                        let row_lo = buf.get_u64_le();
                        let len = buf.get_u64_le() as usize;
                        need(buf, len * 8)?;
                        let values = (0..len).map(|_| buf.get_u64_le()).collect();
                        PatchRegion::RowsU64 { row_lo, values }
                    }
                    2 => {
                        need(buf, 16)?;
                        let col_lo = buf.get_u32_le();
                        let col_hi = buf.get_u32_le();
                        let len = buf.get_u64_le() as usize;
                        need(buf, len * 4)?;
                        let data = (0..len).map(|_| buf.get_f32_le()).collect();
                        PatchRegion::Cols { col_lo, col_hi, data }
                    }
                    3 => {
                        need(buf, 16)?;
                        let row_lo = buf.get_u64_le();
                        let n_off = buf.get_u64_le() as usize;
                        need(buf, n_off * 8 + 8)?;
                        let offsets = (0..n_off).map(|_| buf.get_u64_le()).collect();
                        let n_tgt = buf.get_u64_le() as usize;
                        need(buf, n_tgt * 8)?;
                        let targets = (0..n_tgt).map(|_| buf.get_u64_le()).collect();
                        PatchRegion::Adj { row_lo, offsets, targets }
                    }
                    4 => {
                        need(buf, 16)?;
                        let row_lo = buf.get_u64_le();
                        let len = buf.get_u64_le() as usize;
                        need(buf, len * 4)?;
                        let data = (0..len).map(|_| buf.get_f32_le()).collect();
                        PatchRegion::RowsF32 { row_lo, data }
                    }
                    t => return Err(PsError::Dfs(format!("unknown patch region tag {t}"))),
                });
            }
            entries.push(DeltaEntry { name, kind, rows, cols, part_versions, regions });
        }
        Ok(SnapshotDelta { entries })
    }

    /// Read the delta file of a snapshot directory.
    pub fn load(dfs: &Dfs, dir: &str, client: &NodeClock) -> Result<Self> {
        let bytes = dfs
            .read(&delta_path(dir), client)
            .map_err(|e| PsError::Dfs(e.to_string()))?;
        Self::decode(&bytes)
    }
}

fn delta_path(dir: &str) -> String {
    format!("{}/DELTA", dir.trim_end_matches('/'))
}

/// Exports only the partitions whose write version moved since a base
/// manifest — the incremental counterpart of [`SnapshotWriter`]. Each
/// export method pulls the dirty partitions through the normal client RPC
/// path and records them as [`PatchRegion`]s; unchanged objects cost
/// nothing but a version check.
pub struct DeltaWriter<'a> {
    dfs: &'a Dfs,
    dir: String,
    client: &'a NodeClock,
    base: &'a SnapshotManifest,
    delta: SnapshotDelta,
}

impl<'a> DeltaWriter<'a> {
    pub fn new(
        dfs: &'a Dfs,
        dir: impl Into<String>,
        base: &'a SnapshotManifest,
        client: &'a NodeClock,
    ) -> Self {
        DeltaWriter { dfs, dir: dir.into(), client, base, delta: SnapshotDelta::default() }
    }

    /// The base entry for `name`, validated against the live object's
    /// shape; returns the indices of partitions whose version moved.
    fn dirty_partitions(
        &self,
        name: &str,
        kind: SnapshotKind,
        rows: u64,
        current: &[u64],
    ) -> Result<Vec<usize>> {
        let base = self
            .base
            .entry(name)
            .ok_or_else(|| PsError::Dfs(format!("delta: {name} not in the base manifest")))?;
        if base.kind != kind || base.rows != rows {
            return Err(PsError::Dfs(format!(
                "delta: {name} changed shape or kind since the base snapshot"
            )));
        }
        if base.part_versions.len() != current.len() {
            return Err(PsError::Dfs(format!(
                "delta: {name} changed partition count since the base snapshot"
            )));
        }
        Ok((0..current.len())
            .filter(|&p| current[p] != base.part_versions[p])
            .collect())
    }

    fn push_entry(
        &mut self,
        name: &str,
        kind: SnapshotKind,
        rows: u64,
        cols: u32,
        part_versions: Vec<u64>,
        regions: Vec<PatchRegion>,
    ) {
        if !regions.is_empty() {
            self.delta.entries.push(DeltaEntry {
                name: name.to_string(),
                kind,
                rows,
                cols,
                part_versions,
                regions,
            });
        }
    }

    /// Diff a f64 vector; returns how many partitions were re-exported.
    pub fn vector_f64(&mut self, h: &VectorHandle<f64>) -> Result<usize> {
        let current = h.partition_versions()?;
        let dirty =
            self.dirty_partitions(h.name(), SnapshotKind::VecF64, h.size(), &current)?;
        let mut regions = Vec::with_capacity(dirty.len());
        for &p in &dirty {
            let (start, end) = h.layout().range_of(p).ok_or_else(|| {
                PsError::Dfs(format!("delta: {} is not range-partitioned", h.name()))
            })?;
            let ids: Vec<u64> = (start..end).collect();
            regions.push(PatchRegion::RowsF64 { row_lo: start, values: h.pull(self.client, &ids)? });
        }
        self.push_entry(h.name(), SnapshotKind::VecF64, h.size(), 1, current, regions);
        Ok(dirty.len())
    }

    /// Diff a u64 vector; returns how many partitions were re-exported.
    pub fn vector_u64(&mut self, h: &VectorHandle<u64>) -> Result<usize> {
        let current = h.partition_versions()?;
        let dirty =
            self.dirty_partitions(h.name(), SnapshotKind::VecU64, h.size(), &current)?;
        let mut regions = Vec::with_capacity(dirty.len());
        for &p in &dirty {
            let (start, end) = h.layout().range_of(p).ok_or_else(|| {
                PsError::Dfs(format!("delta: {} is not range-partitioned", h.name()))
            })?;
            let ids: Vec<u64> = (start..end).collect();
            regions.push(PatchRegion::RowsU64 { row_lo: start, values: h.pull(self.client, &ids)? });
        }
        self.push_entry(h.name(), SnapshotKind::VecU64, h.size(), 1, current, regions);
        Ok(dirty.len())
    }

    /// Diff a column-partitioned matrix: each dirty partition is one
    /// column stripe of every row. Returns the re-exported count.
    pub fn colmatrix(&mut self, h: &ColMatrixHandle) -> Result<usize> {
        let current = h.partition_versions()?;
        let dirty =
            self.dirty_partitions(h.name(), SnapshotKind::MatF32, h.rows(), &current)?;
        let mut regions = Vec::with_capacity(dirty.len());
        for &p in &dirty {
            let part = h.pull_col_slice(self.client, p)?;
            regions.push(PatchRegion::Cols {
                col_lo: part.col_start as u32,
                col_hi: part.col_end as u32,
                data: part.data,
            });
        }
        self.push_entry(
            h.name(),
            SnapshotKind::MatF32,
            h.rows(),
            h.cols() as u32,
            current,
            regions,
        );
        Ok(dirty.len())
    }

    /// Diff a row-partitioned f32 matrix: each dirty partition is one
    /// contiguous block of full rows. Returns the re-exported count.
    pub fn matrix_f32(&mut self, h: &MatrixHandle<f32>) -> Result<usize> {
        let current = h.partition_versions()?;
        let dirty =
            self.dirty_partitions(h.name(), SnapshotKind::MatF32, h.rows(), &current)?;
        let mut regions = Vec::with_capacity(dirty.len());
        for &p in &dirty {
            let (start, end) = h.layout().range_of(p).ok_or_else(|| {
                PsError::Dfs(format!("delta: {} is not range-partitioned", h.name()))
            })?;
            let ids: Vec<u64> = (start..end).collect();
            let mut data = Vec::with_capacity(ids.len() * h.cols());
            for row in h.pull_rows(self.client, &ids)? {
                data.extend_from_slice(&row);
            }
            regions.push(PatchRegion::RowsF32 { row_lo: start, data });
        }
        self.push_entry(
            h.name(),
            SnapshotKind::MatF32,
            h.rows(),
            h.cols() as u32,
            current,
            regions,
        );
        Ok(dirty.len())
    }

    /// Diff a mutable neighbor table: each dirty partition is re-exported
    /// as a CSR patch of its vertex range (live lists only). Returns the
    /// re-exported count.
    pub fn neighbor_table(&mut self, h: &NeighborTableHandle) -> Result<usize> {
        let current = h.partition_versions()?;
        let dirty = self.dirty_partitions(
            h.name(),
            SnapshotKind::Adjacency,
            h.num_vertices(),
            &current,
        )?;
        let mut regions = Vec::with_capacity(dirty.len());
        for &p in &dirty {
            let (start, end) = h.layout().range_of(p).ok_or_else(|| {
                PsError::Dfs(format!("delta: {} is not range-partitioned", h.name()))
            })?;
            let ids: Vec<u64> = (start..end).collect();
            let mut offsets = Vec::with_capacity(ids.len() + 1);
            let mut targets: Vec<u64> = Vec::new();
            offsets.push(0u64);
            for ns in h.pull(self.client, &ids)? {
                targets.extend_from_slice(&ns);
                offsets.push(targets.len() as u64);
            }
            regions.push(PatchRegion::Adj { row_lo: start, offsets, targets });
        }
        self.push_entry(h.name(), SnapshotKind::Adjacency, h.num_vertices(), 0, current, regions);
        Ok(dirty.len())
    }

    /// Diff a CSR adjacency (dirty only when rebuilt under the same
    /// name). Returns the re-exported count.
    pub fn adjacency(&mut self, h: &CsrHandle) -> Result<usize> {
        let current = h.partition_versions()?;
        let dirty = self.dirty_partitions(
            h.name(),
            SnapshotKind::Adjacency,
            h.num_vertices(),
            &current,
        )?;
        let mut regions = Vec::with_capacity(dirty.len());
        for &p in &dirty {
            let (start, end) = h.layout().range_of(p).ok_or_else(|| {
                PsError::Dfs(format!("delta: {} is not range-partitioned", h.name()))
            })?;
            let ids: Vec<u64> = (start..end).collect();
            let mut offsets = Vec::with_capacity(ids.len() + 1);
            let mut targets: Vec<u64> = Vec::new();
            offsets.push(0u64);
            for ns in h.pull(self.client, &ids)? {
                targets.extend_from_slice(&ns);
                offsets.push(targets.len() as u64);
            }
            regions.push(PatchRegion::Adj { row_lo: start, offsets, targets });
        }
        self.push_entry(h.name(), SnapshotKind::Adjacency, h.num_vertices(), 0, current, regions);
        Ok(dirty.len())
    }

    /// Write the delta file and return the delta. [`SnapshotDelta::rebase`]
    /// the base manifest with it to chain further deltas.
    pub fn finish(self) -> Result<SnapshotDelta> {
        self.dfs
            .write(&delta_path(&self.dir), &self.delta.encode(), self.client)
            .map_err(|e| PsError::Dfs(e.to_string()))?;
        Ok(self.delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioner;
    use crate::ps::{Ps, PsConfig, RecoveryMode};
    use std::sync::Arc;

    fn ps() -> Arc<Ps> {
        Ps::new(PsConfig { servers: 3, ..Default::default() })
    }

    #[test]
    fn manifest_roundtrip() {
        let m = SnapshotManifest {
            entries: vec![
                SnapshotEntry {
                    name: "rank".into(),
                    kind: SnapshotKind::VecF64,
                    rows: 10,
                    cols: 1,
                    part_versions: vec![1, 1, 2],
                },
                SnapshotEntry {
                    name: "embed".into(),
                    kind: SnapshotKind::MatF32,
                    rows: 10,
                    cols: 16,
                    part_versions: vec![3],
                },
            ],
        };
        assert_eq!(SnapshotManifest::decode(&m.encode()).unwrap(), m);
        assert!(SnapshotManifest::decode(&[0u8; 8]).is_err());
    }

    #[test]
    fn export_load_all_kinds() {
        let ps = ps();
        let dfs = psgraph_dfs::Dfs::in_memory();
        let c = psgraph_sim::NodeClock::new();

        let ranks =
            VectorHandle::<f64>::create(&ps, "rank", 7, Partitioner::Range, RecoveryMode::Consistent)
                .unwrap();
        let ids: Vec<u64> = (0..7).collect();
        let rank_vals: Vec<f64> = (0..7).map(|i| 0.1 * i as f64 + 0.013).collect();
        ranks.push_set(&c, &ids, &rank_vals).unwrap();

        let labels =
            VectorHandle::<u64>::create(&ps, "label", 7, Partitioner::Hash, RecoveryMode::Consistent)
                .unwrap();
        let label_vals: Vec<u64> = (0..7).map(|i| i * 3 % 5).collect();
        labels.push_set(&c, &ids, &label_vals).unwrap();

        let embed = ColMatrixHandle::create(&ps, "embed", 7, 6, RecoveryMode::Inconsistent)
            .unwrap();
        embed.init_uniform(&c, 9, 1.0).unwrap();
        let embed_rows = embed.pull_rows(&c, &ids).unwrap();

        let tables = vec![(0u64, vec![1, 2]), (3, vec![0]), (6, vec![5, 4, 3])];
        let adj =
            CsrHandle::build(&ps, "adj", 7, &tables, &c, RecoveryMode::Inconsistent).unwrap();

        let t0 = c.now();
        let mut w = SnapshotWriter::new(&dfs, "/snapshot/test", &c);
        w.vector_f64(&ranks).unwrap();
        w.vector_u64(&labels).unwrap();
        w.colmatrix(&embed).unwrap();
        w.adjacency(&adj).unwrap();
        let manifest = w.finish().unwrap();
        assert_eq!(manifest.entries.len(), 4);
        assert!(c.now() > t0, "export must charge simulated time");

        let loaded = SnapshotManifest::load(&dfs, "/snapshot/test", &c).unwrap();
        assert_eq!(loaded, manifest);

        match load_object(&dfs, "/snapshot/test", loaded.entry("rank").unwrap(), &c).unwrap() {
            SnapshotData::VecF64(v) => {
                let got: Vec<u64> = v.iter().map(|x| x.to_bits()).collect();
                let want: Vec<u64> = rank_vals.iter().map(|x| x.to_bits()).collect();
                assert_eq!(got, want);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        match load_object(&dfs, "/snapshot/test", loaded.entry("label").unwrap(), &c).unwrap() {
            SnapshotData::VecU64(v) => assert_eq!(v, label_vals),
            other => panic!("wrong kind: {other:?}"),
        }
        match load_object(&dfs, "/snapshot/test", loaded.entry("embed").unwrap(), &c).unwrap() {
            SnapshotData::MatF32 { cols, data } => {
                assert_eq!(cols, 6);
                let want: Vec<u32> =
                    embed_rows.iter().flatten().map(|x| x.to_bits()).collect();
                let got: Vec<u32> = data.iter().map(|x| x.to_bits()).collect();
                assert_eq!(got, want);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        match load_object(&dfs, "/snapshot/test", loaded.entry("adj").unwrap(), &c).unwrap() {
            SnapshotData::Adjacency { offsets, targets } => {
                assert_eq!(offsets.len(), 8);
                assert_eq!(targets.len(), 6);
                assert_eq!(&targets[offsets[6] as usize..offsets[7] as usize], &[5, 4, 3]);
                assert_eq!(&targets[offsets[1] as usize..offsets[2] as usize], &[] as &[u64]);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn duplicate_object_name_rejected() {
        let ps = ps();
        let dfs = psgraph_dfs::Dfs::in_memory();
        let c = psgraph_sim::NodeClock::new();
        let v = VectorHandle::<f64>::create(
            &ps, "dup", 3, Partitioner::Range, RecoveryMode::Consistent,
        )
        .unwrap();
        let mut w = SnapshotWriter::new(&dfs, "/snapshot/dup", &c);
        w.vector_f64(&v).unwrap();
        assert!(matches!(w.vector_f64(&v), Err(PsError::Dfs(_))));
    }

    #[test]
    fn mismatched_entry_rejected_on_load() {
        let ps = ps();
        let dfs = psgraph_dfs::Dfs::in_memory();
        let c = psgraph_sim::NodeClock::new();
        let v = VectorHandle::<f64>::create(
            &ps, "v", 3, Partitioner::Range, RecoveryMode::Consistent,
        )
        .unwrap();
        let mut w = SnapshotWriter::new(&dfs, "/s", &c);
        w.vector_f64(&v).unwrap();
        let m = w.finish().unwrap();
        let mut entry = m.entry("v").unwrap().clone();
        entry.rows = 99;
        assert!(load_object(&dfs, "/s", &entry, &c).is_err());
    }

    #[test]
    fn delta_exports_only_dirty_partitions() {
        let ps = ps();
        let dfs = psgraph_dfs::Dfs::in_memory();
        let c = psgraph_sim::NodeClock::new();

        // 12 vertices over 3 servers → range partitions of 4 vertices.
        let ranks = VectorHandle::<f64>::create(
            &ps, "rank", 12, Partitioner::Range, RecoveryMode::Consistent,
        )
        .unwrap();
        let ids: Vec<u64> = (0..12).collect();
        let vals: Vec<f64> = (0..12).map(|i| i as f64).collect();
        ranks.push_set(&c, &ids, &vals).unwrap();

        let embed =
            ColMatrixHandle::create(&ps, "embed", 12, 6, RecoveryMode::Inconsistent).unwrap();
        embed.init_uniform(&c, 5, 1.0).unwrap();

        let mut w = SnapshotWriter::new(&dfs, "/s", &c);
        w.vector_f64(&ranks).unwrap();
        w.colmatrix(&embed).unwrap();
        let base = w.finish().unwrap();

        // Touch only the first rank partition; leave embed untouched.
        ranks.push_set(&c, &[1], &[41.5]).unwrap();

        let mut dw = DeltaWriter::new(&dfs, "/s", &base, &c);
        assert_eq!(dw.vector_f64(&ranks).unwrap(), 1);
        assert_eq!(dw.colmatrix(&embed).unwrap(), 0);
        let delta = dw.finish().unwrap();

        // Untouched object omitted entirely; dirty one carries exactly
        // the dirty partition's rows.
        assert!(delta.entry("embed").is_none());
        let e = delta.entry("rank").unwrap();
        assert_eq!(e.regions.len(), 1);
        match &e.regions[0] {
            PatchRegion::RowsF64 { row_lo, values } => {
                assert_eq!(*row_lo, 0);
                assert_eq!(values.len(), 4);
                assert_eq!(values[1].to_bits(), 41.5f64.to_bits());
                assert_eq!(values[0].to_bits(), 0.0f64.to_bits());
            }
            other => panic!("wrong region: {other:?}"),
        }

        // Round-trips through the DFS bit-exactly.
        let loaded = SnapshotDelta::load(&dfs, "/s", &c).unwrap();
        assert_eq!(loaded, delta);

        // Rebase advances versions: the next delta against the rebased
        // manifest is empty.
        let next = delta.rebase(&base);
        assert_ne!(next, base);
        let mut dw2 = DeltaWriter::new(&dfs, "/s", &next, &c);
        assert_eq!(dw2.vector_f64(&ranks).unwrap(), 0);
        assert!(dw2.finish().unwrap().entries.is_empty());
    }

    #[test]
    fn delta_covers_matrix_and_adjacency_regions() {
        let ps = ps();
        let dfs = psgraph_dfs::Dfs::in_memory();
        let c = psgraph_sim::NodeClock::new();

        let embed =
            ColMatrixHandle::create(&ps, "embed", 5, 6, RecoveryMode::Inconsistent).unwrap();
        embed.init_uniform(&c, 5, 1.0).unwrap();
        let tables = vec![(0u64, vec![1, 2]), (3, vec![0])];
        let adj =
            CsrHandle::build(&ps, "adj", 5, &tables, &c, RecoveryMode::Inconsistent).unwrap();

        let mut w = SnapshotWriter::new(&dfs, "/s2", &c);
        w.colmatrix(&embed).unwrap();
        w.adjacency(&adj).unwrap();
        let base = w.finish().unwrap();

        // A row update dirties every column partition it spans.
        embed.push_add_rows(&c, &[2], &[vec![1.0f32; 6]]).unwrap();
        let want = embed.pull_rows(&c, &[2]).unwrap().remove(0);
        // Rebuilding under the same name continues the version counters.
        let tables2 = vec![(0u64, vec![4]), (3, vec![0])];
        let adj2 =
            CsrHandle::build(&ps, "adj", 5, &tables2, &c, RecoveryMode::Inconsistent).unwrap();

        let mut dw = DeltaWriter::new(&dfs, "/s2", &base, &c);
        assert!(dw.colmatrix(&embed).unwrap() >= 1);
        assert!(dw.adjacency(&adj2).unwrap() >= 1);
        let delta = dw.finish().unwrap();

        // Stitch the Cols regions back together for row 2 and compare
        // bit-exactly against the live matrix.
        let mut row = vec![None::<f32>; 6];
        for r in &delta.entry("embed").unwrap().regions {
            match r {
                PatchRegion::Cols { col_lo, col_hi, data } => {
                    let width = (col_hi - col_lo) as usize;
                    for j in 0..width {
                        row[*col_lo as usize + j] = Some(data[2 * width + j]);
                    }
                }
                other => panic!("wrong region: {other:?}"),
            }
        }
        for (j, x) in row.iter().enumerate() {
            assert_eq!(x.unwrap().to_bits(), want[j].to_bits(), "col {j}");
        }

        // Adjacency regions carry the rebuilt neighbour lists.
        let mut neigh = vec![None::<Vec<u64>>; 5];
        for r in &delta.entry("adj").unwrap().regions {
            match r {
                PatchRegion::Adj { row_lo, offsets, targets } => {
                    for i in 0..offsets.len() - 1 {
                        neigh[*row_lo as usize + i] = Some(
                            targets[offsets[i] as usize..offsets[i + 1] as usize].to_vec(),
                        );
                    }
                }
                other => panic!("wrong region: {other:?}"),
            }
        }
        assert_eq!(neigh[0].clone().unwrap(), vec![4]);
        assert_eq!(neigh[3].clone().unwrap(), vec![0]);

        assert_eq!(SnapshotDelta::load(&dfs, "/s2", &c).unwrap(), delta);
    }

    #[test]
    fn delta_matrix_f32_roundtrip_bit_identical() {
        let ps = ps();
        let dfs = psgraph_dfs::Dfs::in_memory();
        let c = psgraph_sim::NodeClock::new();

        // 12 rows over 3 servers → range partitions of 4 rows.
        let m = MatrixHandle::<f32>::create(
            &ps, "feat", 12, 5, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        m.init_uniform(&c, 11, 1.0).unwrap();

        let mut w = SnapshotWriter::new(&dfs, "/sm", &c);
        w.matrix_f32(&m).unwrap();
        let base = w.finish().unwrap();
        let base_data = match load_object(&dfs, "/sm", base.entry("feat").unwrap(), &c).unwrap()
        {
            SnapshotData::MatF32 { cols, data } => {
                assert_eq!(cols, 5);
                data
            }
            other => panic!("wrong kind: {other:?}"),
        };

        // Dirty one row in the middle partition.
        m.push_set_rows(&c, &[6], &[vec![0.25f32, -1.5, 3.0, 0.0, 9.75]]).unwrap();

        let mut dw = DeltaWriter::new(&dfs, "/sm", &base, &c);
        assert_eq!(dw.matrix_f32(&m).unwrap(), 1);
        let delta = dw.finish().unwrap();
        assert_eq!(SnapshotDelta::load(&dfs, "/sm", &c).unwrap(), delta);

        // Apply the patch to the base payload: the result must be
        // bit-identical to a fresh full export of the live matrix.
        let mut patched = base_data;
        let e = delta.entry("feat").unwrap();
        assert_eq!(e.regions.len(), 1);
        match &e.regions[0] {
            PatchRegion::RowsF32 { row_lo, data } => {
                assert_eq!(*row_lo, 4, "the middle partition starts at row 4");
                assert_eq!(data.len(), 4 * 5, "full partition, full rows");
                let at = *row_lo as usize * 5;
                patched[at..at + data.len()].copy_from_slice(data);
            }
            other => panic!("wrong region: {other:?}"),
        }
        let mut w2 = SnapshotWriter::new(&dfs, "/sm-full", &c);
        w2.matrix_f32(&m).unwrap();
        let full = w2.finish().unwrap();
        let full_data =
            match load_object(&dfs, "/sm-full", full.entry("feat").unwrap(), &c).unwrap() {
                SnapshotData::MatF32 { data, .. } => data,
                other => panic!("wrong kind: {other:?}"),
            };
        let got: Vec<u32> = patched.iter().map(|x| x.to_bits()).collect();
        let want: Vec<u32> = full_data.iter().map(|x| x.to_bits()).collect();
        assert_eq!(got, want);

        // Rebase → nothing further to export.
        let next = delta.rebase(&base);
        let mut dw2 = DeltaWriter::new(&dfs, "/sm", &next, &c);
        assert_eq!(dw2.matrix_f32(&m).unwrap(), 0);
    }

    #[test]
    fn neighbor_table_snapshot_and_delta() {
        let ps = ps();
        let dfs = psgraph_dfs::Dfs::in_memory();
        let c = psgraph_sim::NodeClock::new();

        // 12 vertices over 3 servers → range partitions of 4 vertices.
        let t = NeighborTableHandle::create(
            &ps, "adj", 12, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        t.push(&c, &[(0, vec![1, 2]), (5, vec![0, 7]), (9, vec![3])]).unwrap();

        let mut w = SnapshotWriter::new(&dfs, "/sn", &c);
        w.neighbor_table(&t).unwrap();
        let base = w.finish().unwrap();
        match load_object(&dfs, "/sn", base.entry("adj").unwrap(), &c).unwrap() {
            SnapshotData::Adjacency { offsets, targets } => {
                assert_eq!(offsets.len(), 13);
                assert_eq!(&targets[offsets[5] as usize..offsets[6] as usize], &[0, 7]);
            }
            other => panic!("wrong kind: {other:?}"),
        }

        // Mutate only the middle partition (vertices 4..8): the delta
        // re-exports exactly that vertex range, tombstones excluded.
        t.update_edges(&c, &[(5, 7, false), (6, 11, true)]).unwrap();

        let mut dw = DeltaWriter::new(&dfs, "/sn", &base, &c);
        assert_eq!(dw.neighbor_table(&t).unwrap(), 1);
        let delta = dw.finish().unwrap();
        let e = delta.entry("adj").unwrap();
        assert_eq!(e.regions.len(), 1);
        match &e.regions[0] {
            PatchRegion::Adj { row_lo, offsets, targets } => {
                assert_eq!(*row_lo, 4);
                assert_eq!(offsets.len(), 5);
                let ns = |i: usize| {
                    &targets[offsets[i] as usize..offsets[i + 1] as usize]
                };
                assert_eq!(ns(1), &[0], "removed neighbor is gone");
                assert_eq!(ns(2), &[11], "added neighbor is present");
            }
            other => panic!("wrong region: {other:?}"),
        }
        assert_eq!(SnapshotDelta::load(&dfs, "/sn", &c).unwrap(), delta);

        let next = delta.rebase(&base);
        let mut dw2 = DeltaWriter::new(&dfs, "/sn", &next, &c);
        assert_eq!(dw2.neighbor_table(&t).unwrap(), 0);
    }

    #[test]
    fn delta_rejects_unknown_and_reshaped_objects() {
        let ps = ps();
        let dfs = psgraph_dfs::Dfs::in_memory();
        let c = psgraph_sim::NodeClock::new();
        let v = VectorHandle::<f64>::create(
            &ps, "v", 3, Partitioner::Range, RecoveryMode::Consistent,
        )
        .unwrap();
        let mut w = SnapshotWriter::new(&dfs, "/s3", &c);
        w.vector_f64(&v).unwrap();
        let base = w.finish().unwrap();

        // Object absent from the base manifest.
        let other = VectorHandle::<f64>::create(
            &ps, "other", 3, Partitioner::Range, RecoveryMode::Consistent,
        )
        .unwrap();
        let mut dw = DeltaWriter::new(&dfs, "/s3", &base, &c);
        assert!(matches!(dw.vector_f64(&other), Err(PsError::Dfs(_))));

        // Same name, different shape.
        let mut reshaped = base.clone();
        reshaped.entries[0].rows = 99;
        let mut dw2 = DeltaWriter::new(&dfs, "/s3", &reshaped, &c);
        assert!(matches!(dw2.vector_f64(&v), Err(PsError::Dfs(_))));
    }
}
