//! Read-optimized snapshots of trained PS state.
//!
//! Training leaves ranks/communities/embeddings/adjacency live on the
//! parameter servers; the serving tier (`psgraph-serve`) wants an
//! immutable, flat copy it can shard for read traffic. A
//! [`SnapshotWriter`] pulls each object through the normal client RPC
//! path (charging the exporting client's clock) and writes one flat file
//! per object plus a `MANIFEST` to the DFS:
//!
//! ```text
//! <dir>/MANIFEST            magic, entry count, per-entry (name, kind, rows, cols)
//! <dir>/<name>.snap         kind tag + shape + little-endian payload
//! ```
//!
//! Values are encoded bit-exactly (`to_bits`/`from_bits` for floats), so
//! export → load round-trips f32/f64 with no re-quantization — the serve
//! tier answers with exactly the numbers training produced.

use psgraph_dfs::Dfs;
use psgraph_sim::bytes::{Buf, BufMut};
use psgraph_sim::NodeClock;

use crate::colmatrix::ColMatrixHandle;
use crate::csr::CsrHandle;
use crate::error::{PsError, Result};
use crate::matrix::MatrixHandle;
use crate::vector::VectorHandle;

/// Manifest magic ("PSGSNAP1" as big-endian bytes).
const MAGIC: u64 = 0x5053_4753_4E41_5031;

/// Rows pulled per RPC when exporting matrices/adjacency (bounds the
/// transient client-side buffer, and matches how a real exporter would
/// stream).
const EXPORT_CHUNK: usize = 4096;

/// What one snapshot object holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    VecF64,
    VecU64,
    /// Row-major `rows × cols` f32 (from either a row- or
    /// column-partitioned matrix — the flat form is the same).
    MatF32,
    /// CSR adjacency: `rows + 1` offsets plus packed targets.
    Adjacency,
}

impl SnapshotKind {
    fn tag(self) -> u8 {
        match self {
            SnapshotKind::VecF64 => 0,
            SnapshotKind::VecU64 => 1,
            SnapshotKind::MatF32 => 2,
            SnapshotKind::Adjacency => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => SnapshotKind::VecF64,
            1 => SnapshotKind::VecU64,
            2 => SnapshotKind::MatF32,
            3 => SnapshotKind::Adjacency,
            t => return Err(PsError::Dfs(format!("unknown snapshot kind tag {t}"))),
        })
    }
}

/// One object in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    pub name: String,
    pub kind: SnapshotKind,
    pub rows: u64,
    /// 1 for vectors; the row width for matrices; unused for adjacency.
    pub cols: u32,
}

/// The snapshot directory listing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotManifest {
    pub entries: Vec<SnapshotEntry>,
}

impl SnapshotManifest {
    pub fn entry(&self, name: &str) -> Option<&SnapshotEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_u64_le(MAGIC);
        buf.put_u32_le(self.entries.len() as u32);
        for e in &self.entries {
            buf.put_u32_le(e.name.len() as u32);
            buf.extend_from_slice(e.name.as_bytes());
            buf.put_u8(e.kind.tag());
            buf.put_u64_le(e.rows);
            buf.put_u32_le(e.cols);
        }
        buf
    }

    fn decode(mut bytes: &[u8]) -> Result<Self> {
        let buf = &mut bytes;
        if buf.remaining() < 12 || buf.get_u64_le() != MAGIC {
            return Err(PsError::Dfs("bad snapshot manifest magic".into()));
        }
        let count = buf.get_u32_le() as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 4 {
                return Err(PsError::Dfs("truncated snapshot manifest".into()));
            }
            let name_len = buf.get_u32_le() as usize;
            if buf.remaining() < name_len + 13 {
                return Err(PsError::Dfs("truncated snapshot manifest".into()));
            }
            let name = String::from_utf8(buf[..name_len].to_vec())
                .map_err(|_| PsError::Dfs("non-UTF-8 snapshot object name".into()))?;
            buf.advance(name_len);
            let kind = SnapshotKind::from_tag(buf.get_u8())?;
            let rows = buf.get_u64_le();
            let cols = buf.get_u32_le();
            entries.push(SnapshotEntry { name, kind, rows, cols });
        }
        Ok(SnapshotManifest { entries })
    }

    /// Read the manifest of a snapshot directory.
    pub fn load(dfs: &Dfs, dir: &str, client: &NodeClock) -> Result<Self> {
        let bytes = dfs
            .read(&manifest_path(dir), client)
            .map_err(|e| PsError::Dfs(e.to_string()))?;
        Self::decode(&bytes)
    }
}

/// A decoded snapshot object.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotData {
    VecF64(Vec<f64>),
    VecU64(Vec<u64>),
    MatF32 { cols: usize, data: Vec<f32> },
    Adjacency { offsets: Vec<u64>, targets: Vec<u64> },
}

fn manifest_path(dir: &str) -> String {
    format!("{}/MANIFEST", dir.trim_end_matches('/'))
}

fn object_path(dir: &str, name: &str) -> String {
    format!("{}/{name}.snap", dir.trim_end_matches('/'))
}

/// Load one object of a snapshot, charging the read to `client`.
pub fn load_object(
    dfs: &Dfs,
    dir: &str,
    entry: &SnapshotEntry,
    client: &NodeClock,
) -> Result<SnapshotData> {
    let bytes = dfs
        .read(&object_path(dir, &entry.name), client)
        .map_err(|e| PsError::Dfs(e.to_string()))?;
    let mut slice: &[u8] = &bytes;
    let buf = &mut slice;
    if buf.remaining() < 13 {
        return Err(PsError::Dfs(format!("truncated snapshot object {}", entry.name)));
    }
    let kind = SnapshotKind::from_tag(buf.get_u8())?;
    let rows = buf.get_u64_le();
    let cols = buf.get_u32_le() as usize;
    if kind != entry.kind || rows != entry.rows || cols != entry.cols as usize {
        return Err(PsError::Dfs(format!(
            "snapshot object {} does not match its manifest entry",
            entry.name
        )));
    }
    let need = |buf: &&[u8], n: usize| -> Result<()> {
        if buf.remaining() < n {
            Err(PsError::Dfs(format!("truncated snapshot object {}", entry.name)))
        } else {
            Ok(())
        }
    };
    Ok(match kind {
        SnapshotKind::VecF64 => {
            need(buf, rows as usize * 8)?;
            SnapshotData::VecF64((0..rows).map(|_| buf.get_f64_le()).collect())
        }
        SnapshotKind::VecU64 => {
            need(buf, rows as usize * 8)?;
            SnapshotData::VecU64((0..rows).map(|_| buf.get_u64_le()).collect())
        }
        SnapshotKind::MatF32 => {
            let n = rows as usize * cols;
            need(buf, n * 4)?;
            SnapshotData::MatF32 { cols, data: (0..n).map(|_| buf.get_f32_le()).collect() }
        }
        SnapshotKind::Adjacency => {
            need(buf, (rows as usize + 1) * 8 + 8)?;
            let offsets: Vec<u64> = (0..=rows).map(|_| buf.get_u64_le()).collect();
            let n_tgt = buf.get_u64_le() as usize;
            need(buf, n_tgt * 8)?;
            let targets = (0..n_tgt).map(|_| buf.get_u64_le()).collect();
            SnapshotData::Adjacency { offsets, targets }
        }
    })
}

/// Exports live PS objects into a snapshot directory on the DFS.
pub struct SnapshotWriter<'a> {
    dfs: &'a Dfs,
    dir: String,
    client: &'a NodeClock,
    manifest: SnapshotManifest,
}

impl<'a> SnapshotWriter<'a> {
    pub fn new(dfs: &'a Dfs, dir: impl Into<String>, client: &'a NodeClock) -> Self {
        SnapshotWriter {
            dfs,
            dir: dir.into(),
            client,
            manifest: SnapshotManifest::default(),
        }
    }

    fn write_object(&mut self, entry: SnapshotEntry, payload: Vec<u8>) -> Result<()> {
        if self.manifest.entry(&entry.name).is_some() {
            return Err(PsError::Dfs(format!(
                "snapshot already contains an object named {}",
                entry.name
            )));
        }
        let mut bytes = Vec::with_capacity(13 + payload.len());
        bytes.put_u8(entry.kind.tag());
        bytes.put_u64_le(entry.rows);
        bytes.put_u32_le(entry.cols);
        bytes.extend_from_slice(&payload);
        self.dfs
            .write(&object_path(&self.dir, &entry.name), &bytes, self.client)
            .map_err(|e| PsError::Dfs(e.to_string()))?;
        self.manifest.entries.push(entry);
        Ok(())
    }

    /// Export a dense f64 vector (ranks, scores).
    pub fn vector_f64(&mut self, h: &VectorHandle<f64>) -> Result<()> {
        let values = h.pull_all(self.client)?;
        let mut payload = Vec::with_capacity(values.len() * 8);
        for v in &values {
            payload.put_f64_le(*v);
        }
        self.write_object(
            SnapshotEntry {
                name: h.name().to_string(),
                kind: SnapshotKind::VecF64,
                rows: values.len() as u64,
                cols: 1,
            },
            payload,
        )
    }

    /// Export a dense u64 vector (community / label assignments).
    pub fn vector_u64(&mut self, h: &VectorHandle<u64>) -> Result<()> {
        let values = h.pull_all(self.client)?;
        let mut payload = Vec::with_capacity(values.len() * 8);
        for v in &values {
            payload.put_u64_le(*v);
        }
        self.write_object(
            SnapshotEntry {
                name: h.name().to_string(),
                kind: SnapshotKind::VecU64,
                rows: values.len() as u64,
                cols: 1,
            },
            payload,
        )
    }

    /// Export a row-partitioned f32 matrix.
    pub fn matrix_f32(&mut self, h: &MatrixHandle<f32>) -> Result<()> {
        let rows = h.pull_all(self.client)?;
        let cols = rows.first().map_or(0, Vec::len);
        let mut payload = Vec::with_capacity(rows.len() * cols * 4);
        for row in &rows {
            for v in row {
                payload.put_f32_le(*v);
            }
        }
        self.write_object(
            SnapshotEntry {
                name: h.name().to_string(),
                kind: SnapshotKind::MatF32,
                rows: rows.len() as u64,
                cols: cols as u32,
            },
            payload,
        )
    }

    /// Export a column-partitioned f32 matrix (LINE/GraphSage embeddings),
    /// gathering full rows in chunks through the normal pull path.
    pub fn colmatrix(&mut self, h: &ColMatrixHandle) -> Result<()> {
        let rows = h.rows();
        let cols = h.cols();
        let mut payload = Vec::with_capacity(rows as usize * cols * 4);
        let mut start = 0u64;
        while start < rows {
            let end = (start + EXPORT_CHUNK as u64).min(rows);
            let ids: Vec<u64> = (start..end).collect();
            for row in h.pull_rows(self.client, &ids)? {
                for v in &row {
                    payload.put_f32_le(*v);
                }
            }
            start = end;
        }
        self.write_object(
            SnapshotEntry {
                name: h.name().to_string(),
                kind: SnapshotKind::MatF32,
                rows,
                cols: cols as u32,
            },
            payload,
        )
    }

    /// Export a CSR adjacency snapshot.
    pub fn adjacency(&mut self, h: &CsrHandle) -> Result<()> {
        let n = h.num_vertices();
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut targets: Vec<u64> = Vec::new();
        offsets.push(0u64);
        let mut start = 0u64;
        while start < n {
            let end = (start + EXPORT_CHUNK as u64).min(n);
            let ids: Vec<u64> = (start..end).collect();
            for ns in h.pull(self.client, &ids)? {
                targets.extend_from_slice(&ns);
                offsets.push(targets.len() as u64);
            }
            start = end;
        }
        let mut payload = Vec::with_capacity((offsets.len() + 1 + targets.len()) * 8);
        for &o in &offsets {
            payload.put_u64_le(o);
        }
        payload.put_u64_le(targets.len() as u64);
        for &t in &targets {
            payload.put_u64_le(t);
        }
        self.write_object(
            SnapshotEntry {
                name: h.name().to_string(),
                kind: SnapshotKind::Adjacency,
                rows: n,
                cols: 0,
            },
            payload,
        )
    }

    /// Write the manifest and return it. Must be called last — objects
    /// written after `finish` would not be listed.
    pub fn finish(self) -> Result<SnapshotManifest> {
        self.dfs
            .write(&manifest_path(&self.dir), &self.manifest.encode(), self.client)
            .map_err(|e| PsError::Dfs(e.to_string()))?;
        Ok(self.manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioner;
    use crate::ps::{Ps, PsConfig, RecoveryMode};
    use std::sync::Arc;

    fn ps() -> Arc<Ps> {
        Ps::new(PsConfig { servers: 3, ..Default::default() })
    }

    #[test]
    fn manifest_roundtrip() {
        let m = SnapshotManifest {
            entries: vec![
                SnapshotEntry {
                    name: "rank".into(),
                    kind: SnapshotKind::VecF64,
                    rows: 10,
                    cols: 1,
                },
                SnapshotEntry {
                    name: "embed".into(),
                    kind: SnapshotKind::MatF32,
                    rows: 10,
                    cols: 16,
                },
            ],
        };
        assert_eq!(SnapshotManifest::decode(&m.encode()).unwrap(), m);
        assert!(SnapshotManifest::decode(&[0u8; 8]).is_err());
    }

    #[test]
    fn export_load_all_kinds() {
        let ps = ps();
        let dfs = psgraph_dfs::Dfs::in_memory();
        let c = psgraph_sim::NodeClock::new();

        let ranks =
            VectorHandle::<f64>::create(&ps, "rank", 7, Partitioner::Range, RecoveryMode::Consistent)
                .unwrap();
        let ids: Vec<u64> = (0..7).collect();
        let rank_vals: Vec<f64> = (0..7).map(|i| 0.1 * i as f64 + 0.013).collect();
        ranks.push_set(&c, &ids, &rank_vals).unwrap();

        let labels =
            VectorHandle::<u64>::create(&ps, "label", 7, Partitioner::Hash, RecoveryMode::Consistent)
                .unwrap();
        let label_vals: Vec<u64> = (0..7).map(|i| i * 3 % 5).collect();
        labels.push_set(&c, &ids, &label_vals).unwrap();

        let embed = ColMatrixHandle::create(&ps, "embed", 7, 6, RecoveryMode::Inconsistent)
            .unwrap();
        embed.init_uniform(&c, 9, 1.0).unwrap();
        let embed_rows = embed.pull_rows(&c, &ids).unwrap();

        let tables = vec![(0u64, vec![1, 2]), (3, vec![0]), (6, vec![5, 4, 3])];
        let adj =
            CsrHandle::build(&ps, "adj", 7, &tables, &c, RecoveryMode::Inconsistent).unwrap();

        let t0 = c.now();
        let mut w = SnapshotWriter::new(&dfs, "/snapshot/test", &c);
        w.vector_f64(&ranks).unwrap();
        w.vector_u64(&labels).unwrap();
        w.colmatrix(&embed).unwrap();
        w.adjacency(&adj).unwrap();
        let manifest = w.finish().unwrap();
        assert_eq!(manifest.entries.len(), 4);
        assert!(c.now() > t0, "export must charge simulated time");

        let loaded = SnapshotManifest::load(&dfs, "/snapshot/test", &c).unwrap();
        assert_eq!(loaded, manifest);

        match load_object(&dfs, "/snapshot/test", loaded.entry("rank").unwrap(), &c).unwrap() {
            SnapshotData::VecF64(v) => {
                let got: Vec<u64> = v.iter().map(|x| x.to_bits()).collect();
                let want: Vec<u64> = rank_vals.iter().map(|x| x.to_bits()).collect();
                assert_eq!(got, want);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        match load_object(&dfs, "/snapshot/test", loaded.entry("label").unwrap(), &c).unwrap() {
            SnapshotData::VecU64(v) => assert_eq!(v, label_vals),
            other => panic!("wrong kind: {other:?}"),
        }
        match load_object(&dfs, "/snapshot/test", loaded.entry("embed").unwrap(), &c).unwrap() {
            SnapshotData::MatF32 { cols, data } => {
                assert_eq!(cols, 6);
                let want: Vec<u32> =
                    embed_rows.iter().flatten().map(|x| x.to_bits()).collect();
                let got: Vec<u32> = data.iter().map(|x| x.to_bits()).collect();
                assert_eq!(got, want);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        match load_object(&dfs, "/snapshot/test", loaded.entry("adj").unwrap(), &c).unwrap() {
            SnapshotData::Adjacency { offsets, targets } => {
                assert_eq!(offsets.len(), 8);
                assert_eq!(targets.len(), 6);
                assert_eq!(&targets[offsets[6] as usize..offsets[7] as usize], &[5, 4, 3]);
                assert_eq!(&targets[offsets[1] as usize..offsets[2] as usize], &[] as &[u64]);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn duplicate_object_name_rejected() {
        let ps = ps();
        let dfs = psgraph_dfs::Dfs::in_memory();
        let c = psgraph_sim::NodeClock::new();
        let v = VectorHandle::<f64>::create(
            &ps, "dup", 3, Partitioner::Range, RecoveryMode::Consistent,
        )
        .unwrap();
        let mut w = SnapshotWriter::new(&dfs, "/snapshot/dup", &c);
        w.vector_f64(&v).unwrap();
        assert!(matches!(w.vector_f64(&v), Err(PsError::Dfs(_))));
    }

    #[test]
    fn mismatched_entry_rejected_on_load() {
        let ps = ps();
        let dfs = psgraph_dfs::Dfs::in_memory();
        let c = psgraph_sim::NodeClock::new();
        let v = VectorHandle::<f64>::create(
            &ps, "v", 3, Partitioner::Range, RecoveryMode::Consistent,
        )
        .unwrap();
        let mut w = SnapshotWriter::new(&dfs, "/s", &c);
        w.vector_f64(&v).unwrap();
        let m = w.finish().unwrap();
        let mut entry = m.entry("v").unwrap().clone();
        entry.rows = 99;
        assert!(load_object(&dfs, "/s", &entry, &c).is_err());
    }
}
