//! The generic psFunc mechanism (paper §III-A: "users can customize their
//! operators via a user-defined function, called psFunc").
//!
//! A psFunc runs *on the server that owns a partition*: the client ships
//! only the function's (small) arguments and receives only its (small)
//! result, while the data never leaves the server. The built-in operators
//! (`accumulate_and_reset`, `dot_pairs`, `axpy_pairs`, `adam_step`, …)
//! are specializations of this pattern; this module exposes it directly
//! for user-defined computations over PS vectors.
//!
//! Cost model: one RPC per involved server, with caller-declared request
//! /response byte volumes and per-item server CPU — mirroring what a real
//! UDF deployment must declare to its scheduler.

use psgraph_sim::NodeClock;

use crate::element::Element;
use crate::error::Result;
use crate::vector::{VecPart, VectorHandle};

/// A mutable server-side view of one vector partition.
pub enum PartitionViewMut<'a, E> {
    /// Contiguous slice starting at global index `start`.
    Dense { start: u64, data: &'a mut [E] },
    /// Sparse entries (absent keys read as default).
    Sparse(&'a mut psgraph_sim::FxHashMap<u64, E>),
}

impl<E: Element> VectorHandle<E> {
    /// Run a user-defined function on every partition of this vector,
    /// server-side, merging the per-partition results with `merge`.
    ///
    /// * `req_bytes`/`resp_bytes` — per-server wire volumes to charge
    ///   (the UDF's closure arguments and returned summary).
    /// * `f` — the UDF; it sees a mutable partition view and returns a
    ///   partition-local result. CPU is charged per touched element.
    ///
    /// The UDF is applied to the partitions concurrently on the PS's
    /// thread pool (each application holds its server's state lock, as a
    /// real server-side UDF would). RPC charges and the `merge` fold then
    /// run serially in canonical partition order — the deterministic
    /// reduction rule, so the result and the simulated-time accounting
    /// are identical for every pool size. On error, partitions owned by
    /// live servers may still have been mutated (as with a real fan-out
    /// whose legs fail independently).
    pub fn ps_func<R: Default + Send>(
        &self,
        client: &NodeClock,
        req_bytes: u64,
        resp_bytes: u64,
        f: impl Fn(PartitionViewMut<'_, E>) -> R + Send + Sync,
        merge: impl Fn(R, R) -> R,
    ) -> Result<R> {
        let layout = self.layout().clone();
        let f = &f;
        let computed: Vec<Result<(R, u64)>> = self.owner_ps().pool().map(
            (0..layout.num_partitions).collect(),
            |p| {
                self.with_partition_mut(p, |part| match part {
                    VecPart::Dense { start, data } => {
                        let n = data.len() as u64;
                        (f(PartitionViewMut::Dense { start: *start, data }), n)
                    }
                    VecPart::Sparse { map } => {
                        let n = map.len() as u64;
                        (f(PartitionViewMut::Sparse(map)), n)
                    }
                })
            },
        );
        let mut acc = R::default();
        for (p, res) in computed.into_iter().enumerate() {
            let (r, items) = res?;
            let server_idx = layout.server_of_partition(p);
            self.charge_server_rpc(client, server_idx, req_bytes, items, resp_bytes);
            acc = merge(acc, r);
        }
        Ok(acc)
    }
}

impl<E: Element> VectorHandle<E> {
    /// Built-in scalar operator from the §III-A operator family
    /// ("addition, division, …"): multiply every stored entry by
    /// `factor`, entirely server-side. Division is `scale(1/x)`.
    pub fn scale(&self, client: &NodeClock, factor: f64) -> Result<()>
    where
        E: ScaleInPlace,
    {
        self.ps_func(
            client,
            16,
            8,
            |view| match view {
                PartitionViewMut::Dense { data, .. } => {
                    for x in data.iter_mut() {
                        x.scale_in_place(factor);
                    }
                }
                PartitionViewMut::Sparse(map) => {
                    for x in map.values_mut() {
                        x.scale_in_place(factor);
                    }
                }
            },
            |_, _| (),
        )
    }
}

/// Elements that support in-place scalar multiplication.
pub trait ScaleInPlace {
    fn scale_in_place(&mut self, factor: f64);
}

impl ScaleInPlace for f64 {
    fn scale_in_place(&mut self, factor: f64) {
        *self *= factor;
    }
}

impl ScaleInPlace for f32 {
    fn scale_in_place(&mut self, factor: f64) {
        *self = (*self as f64 * factor) as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partitioner;
    use crate::ps::{Ps, PsConfig, RecoveryMode};
    use std::sync::Arc;

    fn setup(partitioner: Partitioner) -> (Arc<Ps>, VectorHandle<f64>, NodeClock) {
        let ps = Ps::new(PsConfig { servers: 3, ..Default::default() });
        let v = VectorHandle::<f64>::create(&ps, "udf", 90, partitioner, RecoveryMode::Inconsistent)
            .unwrap();
        (ps, v, NodeClock::new())
    }

    #[test]
    fn custom_scale_operator_dense() {
        let (_ps, v, c) = setup(Partitioner::Range);
        let idx: Vec<u64> = (0..90).collect();
        let vals: Vec<f64> = (0..90).map(|i| i as f64).collect();
        v.push_set(&c, &idx, &vals).unwrap();
        // UDF: x *= 2 server-side; returns per-partition max.
        let max = v
            .ps_func(
                &c,
                16,
                8,
                |view| match view {
                    PartitionViewMut::Dense { data, .. } => {
                        let mut m = f64::MIN;
                        for x in data.iter_mut() {
                            *x *= 2.0;
                            m = m.max(*x);
                        }
                        m
                    }
                    PartitionViewMut::Sparse(_) => unreachable!("range layout"),
                },
                f64::max,
            )
            .unwrap();
        assert_eq!(max, 178.0);
        assert_eq!(v.pull(&c, &[0, 89]).unwrap(), vec![0.0, 178.0]);
    }

    #[test]
    fn custom_operator_sparse_layout() {
        let (_ps, v, c) = setup(Partitioner::Hash);
        v.push_set(&c, &[3, 50, 77], &[1.0, 2.0, 3.0]).unwrap();
        // UDF: count stored entries and zero the odd-keyed ones.
        let count = v
            .ps_func(
                &c,
                8,
                8,
                |view| match view {
                    PartitionViewMut::Sparse(map) => {
                        let n = map.len() as u64;
                        for (k, x) in map.iter_mut() {
                            if k % 2 == 1 {
                                *x = 0.0;
                            }
                        }
                        n
                    }
                    PartitionViewMut::Dense { .. } => unreachable!("hash layout"),
                },
                |a, b| a + b,
            )
            .unwrap();
        assert_eq!(count, 3);
        assert_eq!(v.pull(&c, &[3, 50, 77]).unwrap(), vec![0.0, 2.0, 0.0]);
    }

    #[test]
    fn scale_operator_both_layouts() {
        let (_ps, v, c) = setup(Partitioner::Range);
        v.push_set(&c, &[0, 89], &[4.0, 8.0]).unwrap();
        v.scale(&c, 0.5).unwrap();
        assert_eq!(v.pull(&c, &[0, 89]).unwrap(), vec![2.0, 4.0]);
        let (_ps2, vs, c2) = setup(Partitioner::Hash);
        vs.push_set(&c2, &[7], &[10.0]).unwrap();
        vs.scale(&c2, 0.1).unwrap();
        assert!((vs.pull(&c2, &[7]).unwrap()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn psfunc_charges_client_time() {
        let (_ps, v, c) = setup(Partitioner::Range);
        let before = c.now();
        v.ps_func(&c, 64, 64, |_| (), |_, _| ()).unwrap();
        assert!(c.now() > before);
    }

    #[test]
    fn psfunc_fails_on_dead_server() {
        let (ps, v, c) = setup(Partitioner::Range);
        ps.kill_server(0);
        assert!(v.ps_func(&c, 8, 8, |_| (), |_, _| ()).is_err());
    }
}
