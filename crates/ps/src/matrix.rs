//! Row-partitioned matrices: GNN weight matrices `W^k`, vertex feature
//! matrices `X`, and per-vertex embedding tables (paper §IV-E).
//!
//! Rows (vertex index or weight-row index) are distributed by a
//! [`PartitionLayout`]; each server stores its rows contiguously (range) or
//! in a sparse map (hash). Beyond pull/push, the handle exposes the
//! server-side optimizers the paper implements as `psFunc` UDFs: plain SGD,
//! AdaGrad, and Adam — the optimizer state (first/second moments) lives
//! next to the weights on the server and never crosses the network.

use psgraph_sim::bytes::{Buf, BufMut};
use psgraph_sim::{FxHashMap, NodeClock, SplitMix64};
use std::marker::PhantomData;
use std::sync::Arc;

use crate::element::Element;
use crate::error::{PsError, Result};
use crate::partition::{PartitionLayout, Partitioner};
use crate::ps::{ObjectOps, Ps, RecoveryMode};
use crate::server::PsServer;

/// One stored matrix partition (a set of rows).
#[derive(Debug, Clone, PartialEq)]
pub enum MatPart<E> {
    /// Rows `[start, start + n)`, row-major, `n × cols` values.
    Dense { start: u64, cols: usize, data: Vec<E> },
    /// Sparse rows keyed by row index.
    Sparse { cols: usize, map: FxHashMap<u64, Vec<E>> },
}

impl<E: Element> MatPart<E> {
    fn approx_bytes(&self) -> u64 {
        match self {
            MatPart::Dense { data, .. } => (data.len() * E::WIDTH) as u64 + 48,
            MatPart::Sparse { cols, map } => {
                (map.len() * (8 + 24 + cols * E::WIDTH)) as u64 + 48
            }
        }
    }

    fn row(&self, key: u64) -> Option<Vec<E>> {
        match self {
            MatPart::Dense { start, cols, data } => {
                let i = (key - start) as usize * cols;
                Some(data[i..i + cols].to_vec())
            }
            MatPart::Sparse { cols, map } => {
                Some(map.get(&key).cloned().unwrap_or_else(|| vec![E::default(); *cols]))
            }
        }
    }

    fn row_mut(&mut self, key: u64) -> &mut [E] {
        match self {
            MatPart::Dense { start, cols, data } => {
                let i = (key - *start) as usize * *cols;
                &mut data[i..i + *cols]
            }
            MatPart::Sparse { cols, map } => map
                .entry(key)
                .or_insert_with(|| vec![E::default(); *cols]),
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            MatPart::Dense { start, cols, data } => {
                buf.put_u8(0);
                buf.put_u64_le(*start);
                buf.put_u64_le(*cols as u64);
                buf.put_u64_le(data.len() as u64);
                for v in data {
                    v.encode(&mut buf);
                }
            }
            MatPart::Sparse { cols, map } => {
                buf.put_u8(1);
                buf.put_u64_le(*cols as u64);
                buf.put_u64_le(map.len() as u64);
                let mut keys: Vec<_> = map.keys().copied().collect();
                keys.sort_unstable();
                for k in keys {
                    buf.put_u64_le(k);
                    for v in &map[&k] {
                        v.encode(&mut buf);
                    }
                }
            }
        }
        buf
    }

    fn decode(mut bytes: &[u8]) -> Result<Self> {
        let buf = &mut bytes;
        if buf.remaining() < 1 {
            return Err(PsError::Dfs("truncated matrix checkpoint".into()));
        }
        match buf.get_u8() {
            0 => {
                let start = buf.get_u64_le();
                let cols = buf.get_u64_le() as usize;
                let len = buf.get_u64_le() as usize;
                let mut data = Vec::with_capacity(len);
                for _ in 0..len {
                    data.push(E::decode(buf));
                }
                Ok(MatPart::Dense { start, cols, data })
            }
            1 => {
                let cols = buf.get_u64_le() as usize;
                let n = buf.get_u64_le() as usize;
                let mut map = FxHashMap::default();
                for _ in 0..n {
                    let k = buf.get_u64_le();
                    let mut row = Vec::with_capacity(cols);
                    for _ in 0..cols {
                        row.push(E::decode(buf));
                    }
                    map.insert(k, row);
                }
                Ok(MatPart::Sparse { cols, map })
            }
            t => Err(PsError::Dfs(format!("bad matrix partition tag {t}"))),
        }
    }
}

struct MatrixOps<E: Element> {
    name: String,
    layout: PartitionLayout,
    recovery: RecoveryMode,
    _e: PhantomData<fn() -> E>,
}

impl<E: Element> ObjectOps for MatrixOps<E> {
    fn name(&self) -> &str {
        &self.name
    }

    fn layout(&self) -> &PartitionLayout {
        &self.layout
    }

    fn recovery_mode(&self) -> RecoveryMode {
        self.recovery
    }

    fn encode_partition(&self, server: &PsServer, partition: usize) -> Result<Vec<u8>> {
        server.get(&self.name, partition, |p: &MatPart<E>| p.encode())
    }

    fn decode_partition(&self, server: &PsServer, partition: usize, bytes: &[u8]) -> Result<()> {
        let part = MatPart::<E>::decode(bytes)?;
        let size = part.approx_bytes();
        server.insert(&self.name, partition, part, size)
    }
}

/// Typed client handle to a PS row-partitioned matrix.
pub struct MatrixHandle<E: Element> {
    ps: Arc<Ps>,
    name: String,
    rows: u64,
    cols: usize,
    layout: PartitionLayout,
    _e: PhantomData<fn() -> E>,
}

impl<E: Element> Clone for MatrixHandle<E> {
    fn clone(&self) -> Self {
        MatrixHandle {
            ps: Arc::clone(&self.ps),
            name: self.name.clone(),
            rows: self.rows,
            cols: self.cols,
            layout: self.layout.clone(),
            _e: PhantomData,
        }
    }
}

impl<E: Element> std::fmt::Debug for MatrixHandle<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatrixHandle")
            .field("name", &self.name)
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .finish()
    }
}

impl<E: Element> MatrixHandle<E> {
    /// Create a zero matrix of `rows × cols` (paper's
    /// `PSContext.matrix(row, col, DataType)`).
    pub fn create(
        ps: &Arc<Ps>,
        name: impl Into<String>,
        rows: u64,
        cols: usize,
        partitioner: Partitioner,
        recovery: RecoveryMode,
    ) -> Result<Self> {
        assert!(cols > 0, "matrix needs at least one column");
        let name = name.into();
        let layout =
            PartitionLayout::new(partitioner, rows, ps.num_servers(), ps.num_servers());
        let handle = MatrixHandle {
            ps: Arc::clone(ps),
            name: name.clone(),
            rows,
            cols,
            layout: layout.clone(),
            _e: PhantomData,
        };
        for p in 0..layout.num_partitions {
            let server = ps.server(layout.server_of_partition(p));
            let part = match layout.range_of(p) {
                Some((start, end)) => MatPart::Dense {
                    start,
                    cols,
                    data: vec![E::default(); (end - start) as usize * cols],
                },
                None => MatPart::Sparse { cols, map: FxHashMap::default() },
            };
            let bytes = part.approx_bytes();
            server.insert(&name, p, part, bytes)?;
        }
        ps.register(Arc::new(MatrixOps::<E> { name, layout, recovery, _e: PhantomData }));
        Ok(handle)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn rows(&self) -> u64 {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn layout(&self) -> &PartitionLayout {
        &self.layout
    }

    /// Per-partition write versions (see [`crate::PsServer::version`]).
    pub fn partition_versions(&self) -> Result<Vec<u64>> {
        (0..self.layout.num_partitions)
            .map(|p| {
                self.ps
                    .server(self.layout.server_of_partition(p))
                    .version(&self.name, p)
            })
            .collect()
    }

    fn check_rows(&self, rows: &[u64]) -> Result<()> {
        for &r in rows {
            if r >= self.rows {
                return Err(PsError::IndexOutOfBounds {
                    name: self.name.clone(),
                    index: r,
                    size: self.rows,
                });
            }
        }
        Ok(())
    }

    fn group(&self, rows: &[u64]) -> FxHashMap<usize, FxHashMap<usize, Vec<usize>>> {
        let mut groups: FxHashMap<usize, FxHashMap<usize, Vec<usize>>> = FxHashMap::default();
        for (pos, &r) in rows.iter().enumerate() {
            let p = self.layout.partition_of(r);
            let s = self.layout.server_of_partition(p);
            groups.entry(s).or_default().entry(p).or_default().push(pos);
        }
        groups
    }

    fn charge_rpc(
        &self,
        client: &NodeClock,
        server: &PsServer,
        req_bytes: u64,
        items: u64,
        resp_bytes: u64,
    ) {
        self.ps.network().rpc(
            client,
            server.port(),
            req_bytes,
            items * self.ps.config().ops_per_item,
            resp_bytes,
        );
    }

    /// Pull whole rows; result aligns with `rows`.
    pub fn pull_rows(&self, client: &NodeClock, rows: &[u64]) -> Result<Vec<Vec<E>>> {
        self.check_rows(rows)?;
        let mut out: Vec<Vec<E>> = vec![Vec::new(); rows.len()];
        let row_bytes = (self.cols * E::WIDTH) as u64;
        for (s, parts) in self.group(rows) {
            let server = self.ps.server(s);
            server.ensure_alive()?;
            let n: usize = parts.values().map(Vec::len).sum();
            self.charge_rpc(
                client,
                server,
                n as u64 * 8,
                n as u64 * self.cols as u64,
                n as u64 * row_bytes,
            );
            for (p, positions) in parts {
                server.get(&self.name, p, |part: &MatPart<E>| {
                    for &pos in &positions {
                        out[pos] = part.row(rows[pos]).expect("row in partition");
                    }
                })?;
            }
        }
        Ok(out)
    }

    /// Generic server-side row update.
    fn push_rows_with(
        &self,
        client: &NodeClock,
        rows: &[u64],
        values: &[Vec<E>],
        apply: impl Fn(&mut [E], &[E]),
    ) -> Result<()> {
        if rows.len() != values.len() {
            return Err(PsError::DimensionMismatch(format!(
                "{}: {} rows vs {} value rows",
                self.name,
                rows.len(),
                values.len()
            )));
        }
        for v in values {
            if v.len() != self.cols {
                return Err(PsError::DimensionMismatch(format!(
                    "{}: row of width {} vs cols {}",
                    self.name,
                    v.len(),
                    self.cols
                )));
            }
        }
        self.check_rows(rows)?;
        let row_bytes = (self.cols * E::WIDTH) as u64;
        for (s, parts) in self.group(rows) {
            let server = self.ps.server(s);
            server.ensure_alive()?;
            let n: usize = parts.values().map(Vec::len).sum();
            self.charge_rpc(
                client,
                server,
                n as u64 * (8 + row_bytes),
                n as u64 * self.cols as u64,
                8,
            );
            for (p, positions) in parts {
                server.update_resize(&self.name, p, |part: &mut MatPart<E>, _old| {
                    for &pos in &positions {
                        apply(part.row_mut(rows[pos]), &values[pos]);
                    }
                    ((), part.approx_bytes())
                })?;
            }
        }
        Ok(())
    }

    /// Add deltas into rows.
    pub fn push_add_rows(
        &self,
        client: &NodeClock,
        rows: &[u64],
        deltas: &[Vec<E>],
    ) -> Result<()> {
        self.push_rows_with(client, rows, deltas, |row, d| {
            for (r, &x) in row.iter_mut().zip(d) {
                *r = r.add(x);
            }
        })
    }

    /// Overwrite rows.
    pub fn push_set_rows(
        &self,
        client: &NodeClock,
        rows: &[u64],
        values: &[Vec<E>],
    ) -> Result<()> {
        self.push_rows_with(client, rows, values, |row, v| row.copy_from_slice(v))
    }

    /// Pull the whole matrix (driver-side initialization / readout).
    pub fn pull_all(&self, client: &NodeClock) -> Result<Vec<Vec<E>>> {
        let rows: Vec<u64> = (0..self.rows).collect();
        self.pull_rows(client, &rows)
    }

    /// Bytes resident on the servers for this matrix.
    pub fn resident_bytes(&self) -> Result<u64> {
        let mut total = 0;
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            total += server.get(&self.name, p, |part: &MatPart<E>| part.approx_bytes())?;
        }
        Ok(total)
    }
}

impl MatrixHandle<f32> {
    /// Server-side uniform initialization in `[-scale, scale)` (seeded;
    /// deterministic per run). Dense partitions fill every row; sparse
    /// partitions stay lazy (rows materialize on first update).
    pub fn init_uniform(&self, client: &NodeClock, seed: u64, scale: f32) -> Result<()> {
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            server.ensure_alive()?;
            let n = server.update(&self.name, p, |part: &mut MatPart<f32>| {
                let mut rng = SplitMix64::new(seed ^ (p as u64).wrapping_mul(0x9E37_79B9));
                match part {
                    MatPart::Dense { data, .. } => {
                        for v in data.iter_mut() {
                            *v = (rng.next_f64() as f32 * 2.0 - 1.0) * scale;
                        }
                        data.len()
                    }
                    MatPart::Sparse { .. } => 0,
                }
            })?;
            self.charge_rpc(client, server, 24, n as u64, 8);
        }
        Ok(())
    }

    /// Server-side SGD step: `row -= lr × grad` — the simplest psFunc
    /// optimizer.
    pub fn sgd_step(
        &self,
        client: &NodeClock,
        rows: &[u64],
        grads: &[Vec<f32>],
        lr: f32,
    ) -> Result<()> {
        self.push_rows_with(client, rows, grads, move |row, g| {
            for (r, &gi) in row.iter_mut().zip(g) {
                *r -= lr * gi;
            }
        })
    }

    /// Server-side AdaGrad (psFunc, paper §IV-E): accumulates squared
    /// gradients in a shadow matrix `<name>.G` on the same servers.
    pub fn adagrad_step(
        &self,
        client: &NodeClock,
        rows: &[u64],
        grads: &[Vec<f32>],
        lr: f32,
        eps: f32,
    ) -> Result<()> {
        let state = self.optimizer_state(".G")?;
        self.optimizer_step(client, rows, grads, move |w, g, gsq| {
            for i in 0..w.len() {
                gsq[i] += g[i] * g[i];
                w[i] -= lr * g[i] / (gsq[i].sqrt() + eps);
            }
        }, &state)
    }

    /// Server-side Adam (psFunc, paper §IV-E): first/second moments live in
    /// shadow matrices `<name>.m` / `<name>.v`; `t` is the 1-based step.
    #[allow(clippy::too_many_arguments)]
    pub fn adam_step(
        &self,
        client: &NodeClock,
        rows: &[u64],
        grads: &[Vec<f32>],
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        t: u64,
    ) -> Result<()> {
        let m = self.optimizer_state(".m")?;
        let v = self.optimizer_state(".v")?;
        let bc1 = 1.0 - beta1.powi(t as i32);
        let bc2 = 1.0 - beta2.powi(t as i32);
        // Two-state update: run through the generic path twice would race;
        // fuse instead.
        self.fused_adam(client, rows, grads, lr, beta1, beta2, eps, bc1, bc2, &m, &v)
    }

    /// Lazily create a same-shaped shadow matrix for optimizer state.
    fn optimizer_state(&self, suffix: &str) -> Result<MatrixHandle<f32>> {
        let name = format!("{}{suffix}", self.name);
        if self.ps.is_registered(&name) {
            Ok(MatrixHandle {
                ps: Arc::clone(&self.ps),
                name,
                rows: self.rows,
                cols: self.cols,
                layout: self.layout.clone(),
                _e: PhantomData,
            })
        } else {
            MatrixHandle::<f32>::create(
                &self.ps,
                name,
                self.rows,
                self.cols,
                self.layout.partitioner,
                RecoveryMode::Inconsistent,
            )
        }
    }

    fn optimizer_step(
        &self,
        client: &NodeClock,
        rows: &[u64],
        grads: &[Vec<f32>],
        apply: impl Fn(&mut [f32], &[f32], &mut [f32]),
        state: &MatrixHandle<f32>,
    ) -> Result<()> {
        if rows.len() != grads.len() {
            return Err(PsError::DimensionMismatch(format!(
                "{}: {} rows vs {} grads",
                self.name,
                rows.len(),
                grads.len()
            )));
        }
        self.check_rows(rows)?;
        let row_bytes = (self.cols * 4) as u64;
        for (s, parts) in self.group(rows) {
            let server = self.ps.server(s);
            server.ensure_alive()?;
            let n: usize = parts.values().map(Vec::len).sum();
            // Gradients cross the wire; weights and state do not.
            self.charge_rpc(
                client,
                server,
                n as u64 * (8 + row_bytes),
                3 * n as u64 * self.cols as u64,
                8,
            );
            for (p, positions) in parts {
                // Pull state rows out, update weights against them, put back.
                for &pos in &positions {
                    let key = rows[pos];
                    let mut srow = server
                        .get(&state.name, p, |sp: &MatPart<f32>| sp.row(key))?
                        .expect("state row");
                    server.update_resize(&self.name, p, |wp: &mut MatPart<f32>, _old| {
                        apply(wp.row_mut(key), &grads[pos], &mut srow);
                        ((), wp.approx_bytes())
                    })?;
                    server.update_resize(&state.name, p, |sp: &mut MatPart<f32>, _old| {
                        sp.row_mut(key).copy_from_slice(&srow);
                        ((), sp.approx_bytes())
                    })?;
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn fused_adam(
        &self,
        client: &NodeClock,
        rows: &[u64],
        grads: &[Vec<f32>],
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        bc1: f32,
        bc2: f32,
        m: &MatrixHandle<f32>,
        v: &MatrixHandle<f32>,
    ) -> Result<()> {
        if rows.len() != grads.len() {
            return Err(PsError::DimensionMismatch(format!(
                "{}: {} rows vs {} grads",
                self.name,
                rows.len(),
                grads.len()
            )));
        }
        self.check_rows(rows)?;
        let row_bytes = (self.cols * 4) as u64;
        for (s, parts) in self.group(rows) {
            let server = self.ps.server(s);
            server.ensure_alive()?;
            let n: usize = parts.values().map(Vec::len).sum();
            self.charge_rpc(
                client,
                server,
                n as u64 * (8 + row_bytes),
                5 * n as u64 * self.cols as u64,
                8,
            );
            for (p, positions) in parts {
                for &pos in &positions {
                    let key = rows[pos];
                    let g = &grads[pos];
                    let mut mrow = server
                        .get(&m.name, p, |sp: &MatPart<f32>| sp.row(key))?
                        .expect("m row");
                    let mut vrow = server
                        .get(&v.name, p, |sp: &MatPart<f32>| sp.row(key))?
                        .expect("v row");
                    server.update_resize(&self.name, p, |wp: &mut MatPart<f32>, _old| {
                        let w = wp.row_mut(key);
                        for i in 0..w.len() {
                            mrow[i] = beta1 * mrow[i] + (1.0 - beta1) * g[i];
                            vrow[i] = beta2 * vrow[i] + (1.0 - beta2) * g[i] * g[i];
                            let mhat = mrow[i] / bc1;
                            let vhat = vrow[i] / bc2;
                            w[i] -= lr * mhat / (vhat.sqrt() + eps);
                        }
                        ((), wp.approx_bytes())
                    })?;
                    server.update_resize(&m.name, p, |sp: &mut MatPart<f32>, _old| {
                        sp.row_mut(key).copy_from_slice(&mrow);
                        ((), sp.approx_bytes())
                    })?;
                    server.update_resize(&v.name, p, |sp: &mut MatPart<f32>, _old| {
                        sp.row_mut(key).copy_from_slice(&vrow);
                        ((), sp.approx_bytes())
                    })?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ps::PsConfig;
    use psgraph_dfs::Dfs;

    fn ps() -> Arc<Ps> {
        Ps::new(PsConfig { servers: 2, ..Default::default() })
    }

    #[test]
    fn create_pull_push_rows() {
        let ps = ps();
        let c = NodeClock::new();
        let m = MatrixHandle::<f32>::create(
            &ps, "w", 10, 4, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        assert_eq!(m.pull_rows(&c, &[0, 9]).unwrap(), vec![vec![0.0; 4]; 2]);
        m.push_add_rows(&c, &[3], &[vec![1.0, 2.0, 3.0, 4.0]]).unwrap();
        m.push_add_rows(&c, &[3], &[vec![1.0, 0.0, 0.0, 0.0]]).unwrap();
        assert_eq!(m.pull_rows(&c, &[3]).unwrap(), vec![vec![2.0, 2.0, 3.0, 4.0]]);
        m.push_set_rows(&c, &[3], &[vec![9.0; 4]]).unwrap();
        assert_eq!(m.pull_rows(&c, &[3]).unwrap(), vec![vec![9.0; 4]]);
    }

    #[test]
    fn hash_partitioned_sparse_rows_default_zero() {
        let ps = ps();
        let c = NodeClock::new();
        let m = MatrixHandle::<f64>::create(
            &ps, "x", 1000, 3, Partitioner::Hash, RecoveryMode::Inconsistent,
        )
        .unwrap();
        assert_eq!(m.pull_rows(&c, &[777]).unwrap(), vec![vec![0.0; 3]]);
        m.push_add_rows(&c, &[777], &[vec![1.0, 2.0, 3.0]]).unwrap();
        assert_eq!(m.pull_rows(&c, &[777]).unwrap(), vec![vec![1.0, 2.0, 3.0]]);
    }

    #[test]
    fn dimension_checks() {
        let ps = ps();
        let c = NodeClock::new();
        let m = MatrixHandle::<f32>::create(
            &ps, "w", 10, 4, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        assert!(m.pull_rows(&c, &[10]).is_err());
        assert!(m.push_add_rows(&c, &[0], &[vec![1.0; 3]]).is_err());
        assert!(m.push_add_rows(&c, &[0, 1], &[vec![1.0; 4]]).is_err());
    }

    #[test]
    fn init_uniform_is_seeded_and_bounded() {
        let ps = ps();
        let c = NodeClock::new();
        let m = MatrixHandle::<f32>::create(
            &ps, "w", 20, 8, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        m.init_uniform(&c, 42, 0.5).unwrap();
        let a = m.pull_all(&c).unwrap();
        assert!(a.iter().flatten().any(|&x| x != 0.0));
        assert!(a.iter().flatten().all(|&x| x.abs() <= 0.5));
        // Re-init with same seed reproduces.
        m.init_uniform(&c, 42, 0.5).unwrap();
        assert_eq!(m.pull_all(&c).unwrap(), a);
    }

    #[test]
    fn sgd_step_descends() {
        let ps = ps();
        let c = NodeClock::new();
        let m = MatrixHandle::<f32>::create(
            &ps, "w", 4, 2, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        m.push_set_rows(&c, &[1], &[vec![1.0, 1.0]]).unwrap();
        m.sgd_step(&c, &[1], &[vec![0.5, -0.5]], 0.1).unwrap();
        let r = m.pull_rows(&c, &[1]).unwrap();
        assert!((r[0][0] - 0.95).abs() < 1e-6);
        assert!((r[0][1] - 1.05).abs() < 1e-6);
    }

    #[test]
    fn adagrad_scales_by_accumulated_gradient() {
        let ps = ps();
        let c = NodeClock::new();
        let m = MatrixHandle::<f32>::create(
            &ps, "w", 4, 1, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        m.adagrad_step(&c, &[0], &[vec![1.0]], 0.1, 1e-8).unwrap();
        let w1 = m.pull_rows(&c, &[0]).unwrap()[0][0];
        assert!((w1 + 0.1).abs() < 1e-4, "first step ≈ -lr, got {w1}");
        m.adagrad_step(&c, &[0], &[vec![1.0]], 0.1, 1e-8).unwrap();
        let w2 = m.pull_rows(&c, &[0]).unwrap()[0][0];
        let second_step = (w2 - w1).abs();
        assert!(second_step < 0.1, "adagrad must shrink steps: {second_step}");
    }

    #[test]
    fn adam_first_step_is_about_lr() {
        let ps = ps();
        let c = NodeClock::new();
        let m = MatrixHandle::<f32>::create(
            &ps, "w", 2, 2, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        m.adam_step(&c, &[0], &[vec![3.0, -3.0]], 0.01, 0.9, 0.999, 1e-8, 1)
            .unwrap();
        let r = m.pull_rows(&c, &[0]).unwrap();
        // Bias-corrected Adam's first step ≈ lr in gradient direction.
        assert!((r[0][0] + 0.01).abs() < 1e-3, "got {}", r[0][0]);
        assert!((r[0][1] - 0.01).abs() < 1e-3, "got {}", r[0][1]);
        // Moments were created as shadow objects.
        assert!(ps.is_registered("w.m"));
        assert!(ps.is_registered("w.v"));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let ps = ps();
        let c = NodeClock::new();
        let m = MatrixHandle::<f32>::create(
            &ps, "w", 1, 1, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        m.push_set_rows(&c, &[0], &[vec![5.0]]).unwrap();
        // Minimize (w-2)^2: grad = 2(w-2).
        for t in 1..=600u64 {
            let w = m.pull_rows(&c, &[0]).unwrap()[0][0];
            m.adam_step(&c, &[0], &[vec![2.0 * (w - 2.0)]], 0.05, 0.9, 0.999, 1e-8, t)
                .unwrap();
        }
        let w = m.pull_rows(&c, &[0]).unwrap()[0][0];
        assert!((w - 2.0).abs() < 0.05, "adam failed to converge: {w}");
    }

    #[test]
    fn checkpoint_restore_matrix() {
        let ps = ps();
        let c = NodeClock::new();
        let dfs = Dfs::in_memory();
        let m = MatrixHandle::<f32>::create(
            &ps, "w", 8, 3, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        m.push_set_rows(&c, &[0, 7], &[vec![1.0; 3], vec![7.0; 3]]).unwrap();
        ps.checkpoint(&dfs, "w").unwrap();
        ps.kill_server(0);
        ps.restart_server(0, c.now());
        ps.recover_server(0, &dfs, &c).unwrap();
        assert_eq!(m.pull_rows(&c, &[0]).unwrap(), vec![vec![1.0; 3]]);
        assert_eq!(m.pull_rows(&c, &[7]).unwrap(), vec![vec![7.0; 3]]);
    }

    #[test]
    fn matpart_encode_decode_roundtrip() {
        let dense: MatPart<f32> =
            MatPart::Dense { start: 2, cols: 2, data: vec![1.0, 2.0, 3.0, 4.0] };
        assert_eq!(MatPart::<f32>::decode(&dense.encode()).unwrap(), dense);
        let mut map = FxHashMap::default();
        map.insert(9u64, vec![1.0f32, -1.0]);
        let sparse: MatPart<f32> = MatPart::Sparse { cols: 2, map };
        assert_eq!(MatPart::<f32>::decode(&sparse.encode()).unwrap(), sparse);
        assert!(MatPart::<f32>::decode(&[7]).is_err());
        assert!(MatPart::<f32>::decode(&[]).is_err());
    }

    #[test]
    fn pulls_cost_time_proportional_to_width() {
        let ps = ps();
        let narrow = MatrixHandle::<f32>::create(
            &ps, "n", 100, 2, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        let wide = MatrixHandle::<f32>::create(
            &ps, "wdt", 100, 256, Partitioner::Range, RecoveryMode::Inconsistent,
        )
        .unwrap();
        let c1 = NodeClock::new();
        let c2 = NodeClock::new();
        let ids: Vec<u64> = (0..100).collect();
        narrow.pull_rows(&c1, &ids).unwrap();
        wide.pull_rows(&c2, &ids).unwrap();
        assert!(c2.now() > c1.now());
    }
}
