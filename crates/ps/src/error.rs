//! Parameter-server error type.

use psgraph_sim::OutOfMemory;
use std::fmt;

/// Errors surfaced by the parameter server.
#[derive(Debug, Clone, PartialEq)]
pub enum PsError {
    /// A server-side allocation exceeded the server's memory budget.
    Oom(OutOfMemory),
    /// The server holding a needed partition is down.
    ServerDown { id: usize },
    /// No matrix/vector/table registered under this name.
    NotFound(String),
    /// A handle's element type does not match the stored partition.
    TypeMismatch { name: String },
    /// Index outside the declared size.
    IndexOutOfBounds { name: String, index: u64, size: u64 },
    /// Mismatched argument lengths (indices vs values, etc.).
    DimensionMismatch(String),
    /// Checkpoint I/O failure.
    Dfs(String),
    /// No checkpoint available to recover from.
    NoCheckpoint(String),
}

impl fmt::Display for PsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsError::Oom(e) => write!(f, "ps OOM: {e}"),
            PsError::ServerDown { id } => write!(f, "ps server {id} is down"),
            PsError::NotFound(n) => write!(f, "ps object not found: {n}"),
            PsError::TypeMismatch { name } => write!(f, "ps type mismatch on {name}"),
            PsError::IndexOutOfBounds { name, index, size } => {
                write!(f, "ps index {index} out of bounds for {name} (size {size})")
            }
            PsError::DimensionMismatch(m) => write!(f, "ps dimension mismatch: {m}"),
            PsError::Dfs(e) => write!(f, "ps checkpoint I/O: {e}"),
            PsError::NoCheckpoint(n) => write!(f, "ps: no checkpoint for {n}"),
        }
    }
}

impl std::error::Error for PsError {}

impl From<OutOfMemory> for PsError {
    fn from(e: OutOfMemory) -> Self {
        PsError::Oom(e)
    }
}

impl From<psgraph_dfs::DfsError> for PsError {
    fn from(e: psgraph_dfs::DfsError) -> Self {
        PsError::Dfs(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, PsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let oom = OutOfMemory { owner: "server-0".into(), requested: 1, in_use: 0, budget: 0 };
        assert!(PsError::from(oom).to_string().contains("OOM"));
        assert!(PsError::ServerDown { id: 2 }.to_string().contains('2'));
        assert!(PsError::NotFound("ranks".into()).to_string().contains("ranks"));
        assert!(PsError::TypeMismatch { name: "m".into() }.to_string().contains('m'));
        assert!(PsError::IndexOutOfBounds { name: "v".into(), index: 9, size: 5 }
            .to_string()
            .contains("9"));
        assert!(PsError::DimensionMismatch("a!=b".into()).to_string().contains("a!=b"));
        assert!(PsError::from(psgraph_dfs::DfsError::NotFound("/c".into()))
            .to_string()
            .contains("/c"));
        assert!(PsError::NoCheckpoint("w".into()).to_string().contains('w'));
    }
}
