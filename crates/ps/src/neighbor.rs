//! Server-resident neighbor tables (paper §III-A, §IV-B): the adjacency
//! structure used by Common Neighbor, Triangle Count, and GraphSage's
//! neighbor sampling.
//!
//! Executors build `(src, Array[dst])` entries with `groupBy` and push
//! them to the PS; afterwards any executor can pull the adjacency of any
//! vertex without a shuffle.
//!
//! Entries are **mutable**: `update_edges` applies ordered add/remove
//! operations so a streaming ingestor (`psgraph-stream`) can evolve the
//! graph online. Removal is tombstone-based — the slot is overwritten
//! with a sentinel rather than shifting the list, and an entry compacts
//! once half its slots are dead. Because adds always append and
//! compaction preserves slot order, the *live* neighbor list is always
//! exactly "insertion order minus removed elements", independent of when
//! compaction runs.

use psgraph_sim::bytes::{Buf, BufMut};
use psgraph_sim::{FxHashMap, NodeClock, SplitMix64};
use std::sync::Arc;

use crate::error::{PsError, Result};
use crate::partition::{PartitionLayout, Partitioner};
use crate::ps::{ObjectOps, Ps, RecoveryMode};
use crate::server::PsServer;

/// Sentinel marking a removed slot. Never a valid vertex id: every id is
/// bounds-checked against the table size before reaching a server.
pub const TOMBSTONE: u64 = u64::MAX;

/// One vertex's neighbor slots. `slots` holds neighbors in insertion
/// order with removed ones overwritten by [`TOMBSTONE`]; `dead` counts
/// them so live length and compaction are O(1) decisions.
#[derive(Debug, Clone, Default)]
pub struct NeighborEntry {
    slots: Arc<Vec<u64>>,
    dead: usize,
}

impl NeighborEntry {
    /// An entry holding `neighbors` as its live list.
    pub fn new(neighbors: Vec<u64>) -> Self {
        NeighborEntry { slots: Arc::new(neighbors), dead: 0 }
    }

    /// Live (non-tombstoned) neighbor count.
    pub fn live_len(&self) -> usize {
        self.slots.len() - self.dead
    }

    /// Total slots including tombstones (the memory footprint).
    pub fn slot_len(&self) -> usize {
        self.slots.len()
    }

    /// The live neighbor list, in insertion order. Cheap (an `Arc` clone)
    /// when the entry has no tombstones.
    pub fn live(&self) -> Arc<Vec<u64>> {
        if self.dead == 0 {
            Arc::clone(&self.slots)
        } else {
            Arc::new(self.slots.iter().copied().filter(|&s| s != TOMBSTONE).collect())
        }
    }

    /// Append `x` unless it is already a live neighbor. Returns whether
    /// the edge was added.
    pub fn add(&mut self, x: u64) -> bool {
        if self.slots.iter().any(|&s| s == x) {
            return false;
        }
        Arc::make_mut(&mut self.slots).push(x);
        true
    }

    /// Tombstone the slot holding `x` (if live), compacting once dead
    /// slots reach half the entry. Returns whether the edge was removed.
    pub fn remove(&mut self, x: u64) -> bool {
        let slots = Arc::make_mut(&mut self.slots);
        match slots.iter().position(|&s| s == x) {
            Some(i) => {
                slots[i] = TOMBSTONE;
                self.dead += 1;
                if self.dead * 2 >= slots.len() {
                    slots.retain(|&s| s != TOMBSTONE);
                    self.dead = 0;
                }
                true
            }
            None => false,
        }
    }
}

type TablePart = FxHashMap<u64, NeighborEntry>;

fn part_bytes(map: &TablePart) -> u64 {
    map.values().map(|e| 8 + 24 + e.slot_len() as u64 * 8)
        .sum::<u64>()
        + 48
}

fn encode_part(map: &TablePart) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.put_u64_le(map.len() as u64);
    let mut keys: Vec<u64> = map.keys().copied().collect();
    keys.sort_unstable();
    for k in keys {
        // Checkpoints hold the live list only — tombstones are a
        // transient in-memory artifact, so restore implies compaction.
        let v = map[&k].live();
        buf.put_u64_le(k);
        buf.put_u64_le(v.len() as u64);
        for &n in v.iter() {
            buf.put_u64_le(n);
        }
    }
    buf
}

fn decode_part(mut bytes: &[u8]) -> Result<TablePart> {
    let buf = &mut bytes;
    if buf.remaining() < 8 {
        return Err(PsError::Dfs("truncated neighbor-table checkpoint".into()));
    }
    let n = buf.get_u64_le() as usize;
    let mut map = TablePart::default();
    map.reserve(n);
    for _ in 0..n {
        let k = buf.get_u64_le();
        let len = buf.get_u64_le() as usize;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(buf.get_u64_le());
        }
        map.insert(k, NeighborEntry::new(v));
    }
    Ok(map)
}

struct NeighborOps {
    name: String,
    layout: PartitionLayout,
    recovery: RecoveryMode,
}

impl ObjectOps for NeighborOps {
    fn name(&self) -> &str {
        &self.name
    }

    fn layout(&self) -> &PartitionLayout {
        &self.layout
    }

    fn recovery_mode(&self) -> RecoveryMode {
        self.recovery
    }

    fn encode_partition(&self, server: &PsServer, partition: usize) -> Result<Vec<u8>> {
        server.get(&self.name, partition, |p: &TablePart| encode_part(p))
    }

    fn decode_partition(&self, server: &PsServer, partition: usize, bytes: &[u8]) -> Result<()> {
        let part = decode_part(bytes)?;
        let size = part_bytes(&part);
        server.insert(&self.name, partition, part, size)
    }
}

/// Client handle to a PS neighbor table.
#[derive(Clone)]
pub struct NeighborTableHandle {
    ps: Arc<Ps>,
    name: String,
    layout: PartitionLayout,
}

impl std::fmt::Debug for NeighborTableHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NeighborTableHandle")
            .field("name", &self.name)
            .field("vertices", &self.layout.size)
            .finish()
    }
}

impl NeighborTableHandle {
    /// Create an empty table over vertex ids `[0, num_vertices)`.
    pub fn create(
        ps: &Arc<Ps>,
        name: impl Into<String>,
        num_vertices: u64,
        partitioner: Partitioner,
        recovery: RecoveryMode,
    ) -> Result<Self> {
        let name = name.into();
        let layout =
            PartitionLayout::new(partitioner, num_vertices, ps.num_servers(), ps.num_servers());
        for p in 0..layout.num_partitions {
            let server = ps.server(layout.server_of_partition(p));
            let part = TablePart::default();
            let bytes = part_bytes(&part);
            server.insert(&name, p, part, bytes)?;
        }
        ps.register(Arc::new(NeighborOps {
            name: name.clone(),
            layout: layout.clone(),
            recovery,
        }));
        Ok(NeighborTableHandle { ps: Arc::clone(ps), name, layout })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn num_vertices(&self) -> u64 {
        self.layout.size
    }

    pub fn layout(&self) -> &PartitionLayout {
        &self.layout
    }

    fn check(&self, ids: &[u64]) -> Result<()> {
        for &v in ids {
            if v >= self.layout.size {
                return Err(PsError::IndexOutOfBounds {
                    name: self.name.clone(),
                    index: v,
                    size: self.layout.size,
                });
            }
        }
        Ok(())
    }

    /// Push neighbor lists (replacing any existing entry for the vertex).
    pub fn push(&self, client: &NodeClock, entries: &[(u64, Vec<u64>)]) -> Result<()> {
        let ids: Vec<u64> = entries.iter().map(|(v, _)| *v).collect();
        self.check(&ids)?;
        // Group entry positions by (server, partition).
        let mut groups: FxHashMap<usize, FxHashMap<usize, Vec<usize>>> = FxHashMap::default();
        for (pos, &v) in ids.iter().enumerate() {
            let p = self.layout.partition_of(v);
            let s = self.layout.server_of_partition(p);
            groups.entry(s).or_default().entry(p).or_default().push(pos);
        }
        for (s, parts) in groups {
            let server = self.ps.server(s);
            server.ensure_alive()?;
            let total: u64 = parts
                .values()
                .flatten()
                .map(|&pos| 16 + entries[pos].1.len() as u64 * 8)
                .sum();
            let items: u64 = parts
                .values()
                .flatten()
                .map(|&pos| entries[pos].1.len() as u64 + 1)
                .sum();
            self.ps.network().rpc(
                client,
                server.port(),
                total,
                items * self.ps.config().ops_per_item,
                8,
            );
            for (p, positions) in parts {
                server.update_resize(&self.name, p, |part: &mut TablePart, _old| {
                    for &pos in &positions {
                        let (v, ns) = &entries[pos];
                        part.insert(*v, NeighborEntry::new(ns.clone()));
                    }
                    ((), part_bytes(part))
                })?;
            }
        }
        Ok(())
    }

    /// Apply ordered edge mutations: `(src, dst, add)` adds `dst` to
    /// `src`'s list when `add` is true (skipping live duplicates) and
    /// tombstones it otherwise (skipping absent edges). Operation order
    /// is preserved *per source vertex* — all ops on a source land in its
    /// partition in input order — so add→remove→add sequences resolve the
    /// way a stream emitted them. Returns `(added, removed)` counts of
    /// the operations that took effect.
    pub fn update_edges(
        &self,
        client: &NodeClock,
        ops: &[(u64, u64, bool)],
    ) -> Result<(usize, usize)> {
        for &(src, dst, _) in ops {
            self.check(&[src, dst])?;
        }
        let mut groups: FxHashMap<usize, FxHashMap<usize, Vec<usize>>> = FxHashMap::default();
        for (pos, &(src, _, _)) in ops.iter().enumerate() {
            let p = self.layout.partition_of(src);
            let s = self.layout.server_of_partition(p);
            groups.entry(s).or_default().entry(p).or_default().push(pos);
        }
        let mut added = 0usize;
        let mut removed = 0usize;
        for (s, parts) in groups {
            let server = self.ps.server(s);
            server.ensure_alive()?;
            let n: u64 = parts.values().map(|v| v.len() as u64).sum();
            self.ps.network().rpc(
                client,
                server.port(),
                n * 17,
                n * self.ps.config().ops_per_item,
                16,
            );
            for (p, positions) in parts {
                let (a, r) =
                    server.update_resize(&self.name, p, |part: &mut TablePart, _old| {
                        let mut a = 0usize;
                        let mut r = 0usize;
                        for &pos in &positions {
                            let (src, dst, add) = ops[pos];
                            if add {
                                if part.entry(src).or_default().add(dst) {
                                    a += 1;
                                }
                            } else if let Some(e) = part.get_mut(&src) {
                                if e.remove(dst) {
                                    r += 1;
                                }
                            }
                        }
                        ((a, r), part_bytes(part))
                    })?;
                added += a;
                removed += r;
            }
        }
        Ok((added, removed))
    }

    /// Apply several writers' mutation lanes at once — the sharded
    /// streaming ingest path, where each lane is one shard's micro-batch.
    ///
    /// Wire costs are charged serially in canonical (lane, server) order,
    /// each lane on its *own* clock, so the simulated-time accounting —
    /// including the port occupancy the writes leave behind for later
    /// readers — is identical for every pool size. The per-partition data
    /// application then runs concurrently on the PS worker pool: distinct
    /// lanes usually dirty distinct partitions (both sides tile the same
    /// vertex range), and at a range-boundary partition shared by two
    /// lanes the entries are still source-disjoint, so the final content
    /// is independent of task interleaving. Callers must guarantee that
    /// lane source sets are disjoint; the sharded ingestor keys lanes by
    /// source range, which does. Returns `(added, removed)` per lane.
    pub fn update_edges_sharded(
        &self,
        lanes: &[(&NodeClock, &[(u64, u64, bool)])],
    ) -> Result<Vec<(usize, usize)>> {
        for &(_, ops) in lanes {
            for &(src, dst, _) in ops {
                self.check(&[src, dst])?;
            }
        }
        // (lane, server, partition, op positions) in canonical order.
        let mut tasks: Vec<(usize, usize, usize, Vec<usize>)> = Vec::new();
        for (lane, &(clock, ops)) in lanes.iter().enumerate() {
            let mut groups: FxHashMap<usize, FxHashMap<usize, Vec<usize>>> =
                FxHashMap::default();
            for (pos, &(src, _, _)) in ops.iter().enumerate() {
                let p = self.layout.partition_of(src);
                let s = self.layout.server_of_partition(p);
                groups.entry(s).or_default().entry(p).or_default().push(pos);
            }
            let mut servers: Vec<usize> = groups.keys().copied().collect();
            servers.sort_unstable();
            for s in servers {
                let parts = &groups[&s];
                let server = self.ps.server(s);
                server.ensure_alive()?;
                let n: u64 = parts.values().map(|v| v.len() as u64).sum();
                self.ps.network().rpc(
                    clock,
                    server.port(),
                    n * 17,
                    n * self.ps.config().ops_per_item,
                    16,
                );
                let mut pids: Vec<usize> = parts.keys().copied().collect();
                pids.sort_unstable();
                for p in pids {
                    tasks.push((lane, s, p, parts[&p].clone()));
                }
            }
        }
        let results: Vec<Result<(usize, usize)>> =
            self.ps.pool().map((0..tasks.len()).collect(), |t| {
                let (lane, s, p, ref positions) = tasks[t];
                let ops = lanes[lane].1;
                self.ps.server(s).update_resize(&self.name, p, |part: &mut TablePart, _old| {
                    let mut a = 0usize;
                    let mut r = 0usize;
                    for &pos in positions {
                        let (src, dst, add) = ops[pos];
                        if add {
                            if part.entry(src).or_default().add(dst) {
                                a += 1;
                            }
                        } else if let Some(e) = part.get_mut(&src) {
                            if e.remove(dst) {
                                r += 1;
                            }
                        }
                    }
                    ((a, r), part_bytes(part))
                })
            });
        let mut out = vec![(0usize, 0usize); lanes.len()];
        for (t, res) in results.into_iter().enumerate() {
            let (a, r) = res?;
            out[tasks[t].0].0 += a;
            out[tasks[t].0].1 += r;
        }
        Ok(out)
    }

    /// Add directed edges (see [`NeighborTableHandle::update_edges`]).
    /// Returns how many were added (live duplicates are skipped).
    pub fn add_edges(&self, client: &NodeClock, edges: &[(u64, u64)]) -> Result<usize> {
        let ops: Vec<(u64, u64, bool)> =
            edges.iter().map(|&(s, d)| (s, d, true)).collect();
        Ok(self.update_edges(client, &ops)?.0)
    }

    /// Remove directed edges (see [`NeighborTableHandle::update_edges`]).
    /// Returns how many were removed (absent edges are skipped).
    pub fn remove_edges(&self, client: &NodeClock, edges: &[(u64, u64)]) -> Result<usize> {
        let ops: Vec<(u64, u64, bool)> =
            edges.iter().map(|&(s, d)| (s, d, false)).collect();
        Ok(self.update_edges(client, &ops)?.1)
    }

    /// Pull the adjacency of `ids`. Vertices with no entry return an empty
    /// list. Result aligns with the input. Tombstoned slots are never
    /// visible to readers.
    pub fn pull(&self, client: &NodeClock, ids: &[u64]) -> Result<Vec<Arc<Vec<u64>>>> {
        self.check(ids)?;
        static EMPTY: std::sync::OnceLock<Arc<Vec<u64>>> = std::sync::OnceLock::new();
        let empty = EMPTY.get_or_init(|| Arc::new(Vec::new()));
        let mut out: Vec<Arc<Vec<u64>>> = vec![Arc::clone(empty); ids.len()];
        let mut groups: FxHashMap<usize, FxHashMap<usize, Vec<usize>>> = FxHashMap::default();
        for (pos, &v) in ids.iter().enumerate() {
            let p = self.layout.partition_of(v);
            let s = self.layout.server_of_partition(p);
            groups.entry(s).or_default().entry(p).or_default().push(pos);
        }
        for (s, parts) in groups {
            let server = self.ps.server(s);
            server.ensure_alive()?;
            let mut resp_bytes = 0u64;
            let mut items = 0u64;
            for (p, positions) in &parts {
                server.get(&self.name, *p, |part: &TablePart| {
                    for &pos in positions {
                        if let Some(e) = part.get(&ids[pos]) {
                            let ns = e.live();
                            resp_bytes += ns.len() as u64 * 8 + 16;
                            items += ns.len() as u64 + 1;
                            out[pos] = ns;
                        }
                    }
                })?;
            }
            self.ps.network().rpc(
                client,
                server.port(),
                parts.values().map(|v| v.len() as u64 * 8).sum(),
                items * self.ps.config().ops_per_item,
                resp_bytes,
            );
        }
        Ok(out)
    }

    /// Out-degrees of `ids` (server-side; only counts cross the wire).
    pub fn degrees(&self, client: &NodeClock, ids: &[u64]) -> Result<Vec<u64>> {
        self.check(ids)?;
        let mut out = vec![0u64; ids.len()];
        let mut groups: FxHashMap<usize, FxHashMap<usize, Vec<usize>>> = FxHashMap::default();
        for (pos, &v) in ids.iter().enumerate() {
            let p = self.layout.partition_of(v);
            let s = self.layout.server_of_partition(p);
            groups.entry(s).or_default().entry(p).or_default().push(pos);
        }
        for (s, parts) in groups {
            let server = self.ps.server(s);
            server.ensure_alive()?;
            let n: usize = parts.values().map(Vec::len).sum();
            self.ps.network().rpc(
                client,
                server.port(),
                n as u64 * 8,
                n as u64 * self.ps.config().ops_per_item,
                n as u64 * 8,
            );
            for (p, positions) in parts {
                server.get(&self.name, p, |part: &TablePart| {
                    for &pos in &positions {
                        out[pos] = part.get(&ids[pos]).map_or(0, |e| e.live_len() as u64);
                    }
                })?;
            }
        }
        Ok(out)
    }

    /// Server-side fixed-size neighbor sampling (GraphSage §IV-E): for each
    /// requested vertex return at most `k` neighbors, sampled without
    /// replacement, so only the sample crosses the wire.
    pub fn sample_neighbors(
        &self,
        client: &NodeClock,
        ids: &[u64],
        k: usize,
        seed: u64,
    ) -> Result<Vec<Vec<u64>>> {
        self.check(ids)?;
        let mut out: Vec<Vec<u64>> = vec![Vec::new(); ids.len()];
        let mut groups: FxHashMap<usize, FxHashMap<usize, Vec<usize>>> = FxHashMap::default();
        for (pos, &v) in ids.iter().enumerate() {
            let p = self.layout.partition_of(v);
            let s = self.layout.server_of_partition(p);
            groups.entry(s).or_default().entry(p).or_default().push(pos);
        }
        for (s, parts) in groups {
            let server = self.ps.server(s);
            server.ensure_alive()?;
            let n: usize = parts.values().map(Vec::len).sum();
            self.ps.network().rpc(
                client,
                server.port(),
                n as u64 * 8,
                (n * k) as u64 * self.ps.config().ops_per_item,
                (n * k) as u64 * 8,
            );
            for (p, positions) in parts {
                server.get(&self.name, p, |part: &TablePart| {
                    for &pos in &positions {
                        let v = ids[pos];
                        if let Some(e) = part.get(&v) {
                            let ns = e.live();
                            let mut rng = SplitMix64::new(seed ^ v.wrapping_mul(0x9E37_79B9));
                            if ns.len() <= k {
                                out[pos] = ns.as_ref().clone();
                            } else {
                                // Partial Fisher–Yates over indices.
                                let mut idx: Vec<usize> = (0..ns.len()).collect();
                                for i in 0..k {
                                    let j = i + rng.next_below((idx.len() - i) as u64) as usize;
                                    idx.swap(i, j);
                                }
                                out[pos] = idx[..k].iter().map(|&i| ns[i]).collect();
                            }
                        }
                    }
                })?;
            }
        }
        Ok(out)
    }

    /// Number of vertices with entries (diagnostics).
    pub fn len(&self) -> Result<usize> {
        let mut total = 0;
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            total += server.get(&self.name, p, |part: &TablePart| part.len())?;
        }
        Ok(total)
    }

    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Total tombstoned slots across all entries (diagnostics: memory
    /// awaiting compaction).
    pub fn tombstones(&self) -> Result<usize> {
        let mut total = 0;
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            total += server.get(&self.name, p, |part: &TablePart| {
                part.values().map(|e| e.dead).sum::<usize>()
            })?;
        }
        Ok(total)
    }

    /// Per-partition write versions (delta export diffs against these).
    pub fn partition_versions(&self) -> Result<Vec<u64>> {
        (0..self.layout.num_partitions)
            .map(|p| {
                self.ps
                    .server(self.layout.server_of_partition(p))
                    .version(&self.name, p)
            })
            .collect()
    }

    /// Bytes resident on servers.
    pub fn resident_bytes(&self) -> Result<u64> {
        let mut total = 0;
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            total += server.get(&self.name, p, |part: &TablePart| part_bytes(part))?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ps::PsConfig;
    use psgraph_dfs::Dfs;

    fn ps() -> Arc<Ps> {
        Ps::new(PsConfig { servers: 3, ..Default::default() })
    }

    fn table(ps: &Arc<Ps>) -> NeighborTableHandle {
        NeighborTableHandle::create(ps, "adj", 100, Partitioner::Hash, RecoveryMode::Inconsistent)
            .unwrap()
    }

    #[test]
    fn push_pull_roundtrip() {
        let ps = ps();
        let c = NodeClock::new();
        let t = table(&ps);
        t.push(&c, &[(1, vec![2, 3, 4]), (2, vec![1]), (99, vec![0])]).unwrap();
        let got = t.pull(&c, &[2, 99, 1, 50]).unwrap();
        assert_eq!(*got[0], vec![1]);
        assert_eq!(*got[1], vec![0]);
        assert_eq!(*got[2], vec![2, 3, 4]);
        assert!(got[3].is_empty(), "missing vertex reads as empty");
        assert_eq!(t.len().unwrap(), 3);
        assert!(!t.is_empty().unwrap());
    }

    #[test]
    fn push_replaces_existing_entry() {
        let ps = ps();
        let c = NodeClock::new();
        let t = table(&ps);
        t.push(&c, &[(5, vec![1, 2])]).unwrap();
        t.push(&c, &[(5, vec![9])]).unwrap();
        assert_eq!(*t.pull(&c, &[5]).unwrap()[0], vec![9]);
    }

    #[test]
    fn degrees_match_entries() {
        let ps = ps();
        let c = NodeClock::new();
        let t = table(&ps);
        t.push(&c, &[(0, vec![1, 2, 3]), (1, vec![])]).unwrap();
        assert_eq!(t.degrees(&c, &[0, 1, 2]).unwrap(), vec![3, 0, 0]);
    }

    #[test]
    fn out_of_range_rejected() {
        let ps = ps();
        let c = NodeClock::new();
        let t = table(&ps);
        assert!(t.pull(&c, &[100]).is_err());
        assert!(t.push(&c, &[(100, vec![])]).is_err());
        assert!(t.add_edges(&c, &[(1, 100)]).is_err(), "dst is bounds-checked too");
        assert!(t.remove_edges(&c, &[(100, 1)]).is_err());
    }

    #[test]
    fn add_edges_appends_and_skips_duplicates() {
        let ps = ps();
        let c = NodeClock::new();
        let t = table(&ps);
        t.push(&c, &[(1, vec![2, 3])]).unwrap();
        let added = t.add_edges(&c, &[(1, 4), (1, 2), (7, 8), (1, 4)]).unwrap();
        assert_eq!(added, 2, "duplicate (1,2) and repeated (1,4) are skipped");
        assert_eq!(*t.pull(&c, &[1]).unwrap()[0], vec![2, 3, 4], "adds append in order");
        assert_eq!(*t.pull(&c, &[7]).unwrap()[0], vec![8], "absent source gets a fresh entry");
        assert_eq!(t.degrees(&c, &[1, 7]).unwrap(), vec![3, 1]);
    }

    #[test]
    fn remove_edges_tombstones_and_preserves_order() {
        let ps = ps();
        let c = NodeClock::new();
        let t = table(&ps);
        t.push(&c, &[(1, vec![2, 3, 4, 5, 6])]).unwrap();
        let removed = t.remove_edges(&c, &[(1, 3), (1, 99), (2, 5)]).unwrap();
        assert_eq!(removed, 1, "absent edges are skipped");
        assert_eq!(*t.pull(&c, &[1]).unwrap()[0], vec![2, 4, 5, 6]);
        assert_eq!(t.degrees(&c, &[1]).unwrap(), vec![4]);
        assert_eq!(t.tombstones().unwrap(), 1);
        // Samples never expose a tombstone.
        let s = t.sample_neighbors(&c, &[1], 10, 42).unwrap();
        assert_eq!(s[0], vec![2, 4, 5, 6]);
    }

    #[test]
    fn add_remove_add_roundtrip_in_one_batch() {
        let ps = ps();
        let c = NodeClock::new();
        let t = table(&ps);
        // Interleaved ops on one source must resolve in stream order:
        // add, remove, re-add → present once, now at the end of the list.
        t.push(&c, &[(1, vec![2, 3])]).unwrap();
        let (a, r) = t
            .update_edges(&c, &[(1, 2, false), (1, 4, true), (1, 2, true)])
            .unwrap();
        assert_eq!((a, r), (2, 1));
        assert_eq!(*t.pull(&c, &[1]).unwrap()[0], vec![3, 4, 2]);
    }

    #[test]
    fn compaction_reclaims_tombstones_and_memory() {
        let ps = ps();
        let c = NodeClock::new();
        let t = table(&ps);
        let big: Vec<u64> = (0..64).collect();
        t.push(&c, &[(1, big.clone())]).unwrap();
        let full = t.resident_bytes().unwrap();
        // Remove just under half: tombstones accumulate, footprint holds.
        let victims: Vec<(u64, u64)> = (0..31).map(|d| (1u64, d)).collect();
        assert_eq!(t.remove_edges(&c, &victims).unwrap(), 31);
        assert_eq!(t.tombstones().unwrap(), 31);
        assert_eq!(t.resident_bytes().unwrap(), full);
        // One more removal crosses the half-dead threshold → compaction.
        assert_eq!(t.remove_edges(&c, &[(1, 31)]).unwrap(), 1);
        assert_eq!(t.tombstones().unwrap(), 0);
        assert!(t.resident_bytes().unwrap() < full);
        let live: Vec<u64> = (32..64).collect();
        assert_eq!(*t.pull(&c, &[1]).unwrap()[0], live);
        // The list still behaves normally after compaction.
        assert_eq!(t.add_edges(&c, &[(1, 7)]).unwrap(), 1);
        assert_eq!(t.degrees(&c, &[1]).unwrap(), vec![33]);
    }

    #[test]
    fn sharded_update_matches_sequential_lanes() {
        let lane0: Vec<(u64, u64, bool)> = vec![(1, 2, false), (1, 9, true), (1, 2, true)];
        let lane1: Vec<(u64, u64, bool)> = vec![(60, 61, false), (60, 62, true), (61, 1, true)];
        let base = [(1u64, vec![2u64, 3]), (60, vec![61])];

        let ps1 = ps();
        let t1 = table(&ps1);
        let (c0, c1) = (NodeClock::new(), NodeClock::new());
        t1.push(&c0, &base).unwrap();
        let got = t1.update_edges_sharded(&[(&c0, &lane0), (&c1, &lane1)]).unwrap();
        assert_eq!(got, vec![(2, 1), (2, 1)]);

        let ps2 = ps();
        let t2 = table(&ps2);
        let c = NodeClock::new();
        t2.push(&c, &base).unwrap();
        t2.update_edges(&c, &lane0).unwrap();
        t2.update_edges(&c, &lane1).unwrap();
        for v in [1u64, 60, 61, 9, 62] {
            assert_eq!(t1.pull(&c0, &[v]).unwrap(), t2.pull(&c, &[v]).unwrap());
        }
    }

    #[test]
    fn update_edges_bumps_partition_versions() {
        let ps = ps();
        let c = NodeClock::new();
        let t = table(&ps);
        let before = t.partition_versions().unwrap();
        t.add_edges(&c, &[(1, 2)]).unwrap();
        let after = t.partition_versions().unwrap();
        let p = t.layout().partition_of(1);
        assert_eq!(after[p], before[p] + 1);
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            if i != p {
                assert_eq!(b, a, "untouched partitions keep their version");
            }
        }
    }

    #[test]
    fn sampling_bounds_and_determinism() {
        let ps = ps();
        let c = NodeClock::new();
        let t = table(&ps);
        let big: Vec<u64> = (1..=50).collect();
        t.push(&c, &[(7, big.clone()), (8, vec![1, 2])]).unwrap();
        let s1 = t.sample_neighbors(&c, &[7, 8, 9], 10, 42).unwrap();
        assert_eq!(s1[0].len(), 10);
        assert_eq!(s1[1], vec![1, 2], "small lists returned whole");
        assert!(s1[2].is_empty());
        // Sampled values come from the true neighbor set, no duplicates.
        let set: std::collections::HashSet<u64> = s1[0].iter().copied().collect();
        assert_eq!(set.len(), 10);
        assert!(set.iter().all(|v| big.contains(v)));
        // Deterministic per (seed, vertex).
        let s2 = t.sample_neighbors(&c, &[7], 10, 42).unwrap();
        assert_eq!(s1[0], s2[0]);
        let s3 = t.sample_neighbors(&c, &[7], 10, 43).unwrap();
        assert_ne!(s1[0], s3[0], "different seed should change the sample");
    }

    #[test]
    fn memory_grows_with_pushes() {
        let ps = ps();
        let c = NodeClock::new();
        let t = table(&ps);
        let before = t.resident_bytes().unwrap();
        t.push(&c, &[(1, (0..1000).collect())]).unwrap();
        assert!(t.resident_bytes().unwrap() >= before + 8000);
    }

    #[test]
    fn oom_on_tiny_server_budget() {
        let ps = Ps::new(PsConfig { servers: 1, memory_per_server: 512, ..Default::default() });
        let c = NodeClock::new();
        let t = NeighborTableHandle::create(
            &ps, "adj", 100, Partitioner::Hash, RecoveryMode::Inconsistent,
        )
        .unwrap();
        let err = t.push(&c, &[(1, (0..10_000).collect())]).unwrap_err();
        assert!(matches!(err, PsError::Oom(_)));
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let ps = ps();
        let c = NodeClock::new();
        let dfs = Dfs::in_memory();
        let t = table(&ps);
        t.push(&c, &[(1, vec![2, 3]), (50, vec![60, 70, 80])]).unwrap();
        // Leave a tombstone in place so the checkpoint exercises the
        // live-list compaction path.
        t.remove_edges(&c, &[(50, 70)]).unwrap();
        ps.checkpoint(&dfs, "adj").unwrap();
        for s in 0..ps.num_servers() {
            ps.kill_server(s);
            ps.restart_server(s, c.now());
            ps.recover_server(s, &dfs, &c).unwrap();
        }
        assert_eq!(*t.pull(&c, &[1]).unwrap()[0], vec![2, 3]);
        assert_eq!(*t.pull(&c, &[50]).unwrap()[0], vec![60, 80]);
        assert_eq!(t.len().unwrap(), 2);
        assert_eq!(t.tombstones().unwrap(), 0, "restore compacts");
    }

    #[test]
    fn encode_decode_part_roundtrip() {
        let mut part = TablePart::default();
        part.insert(3, NeighborEntry::new(vec![1, 2]));
        part.insert(9, NeighborEntry::new(vec![]));
        let decoded = decode_part(&encode_part(&part)).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(*decoded[&3].live(), vec![1, 2]);
        assert_eq!(decoded[&9].live_len(), 0);
        assert!(decode_part(&[1, 2]).is_err());
    }
}
