//! Server-resident neighbor tables (paper §III-A, §IV-B): the adjacency
//! structure used by Common Neighbor, Triangle Count, and GraphSage's
//! neighbor sampling.
//!
//! Executors build `(src, Array[dst])` entries with `groupBy` and push
//! them to the PS; afterwards any executor can pull the adjacency of any
//! vertex without a shuffle.

use psgraph_sim::bytes::{Buf, BufMut};
use psgraph_sim::{FxHashMap, NodeClock, SplitMix64};
use std::sync::Arc;

use crate::error::{PsError, Result};
use crate::partition::{PartitionLayout, Partitioner};
use crate::ps::{ObjectOps, Ps, RecoveryMode};
use crate::server::PsServer;

type TablePart = FxHashMap<u64, Arc<Vec<u64>>>;

fn part_bytes(map: &TablePart) -> u64 {
    map.values().map(|v| 8 + 24 + v.len() as u64 * 8)
        .sum::<u64>()
        + 48
}

fn encode_part(map: &TablePart) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.put_u64_le(map.len() as u64);
    let mut keys: Vec<u64> = map.keys().copied().collect();
    keys.sort_unstable();
    for k in keys {
        let v = &map[&k];
        buf.put_u64_le(k);
        buf.put_u64_le(v.len() as u64);
        for &n in v.iter() {
            buf.put_u64_le(n);
        }
    }
    buf
}

fn decode_part(mut bytes: &[u8]) -> Result<TablePart> {
    let buf = &mut bytes;
    if buf.remaining() < 8 {
        return Err(PsError::Dfs("truncated neighbor-table checkpoint".into()));
    }
    let n = buf.get_u64_le() as usize;
    let mut map = TablePart::default();
    map.reserve(n);
    for _ in 0..n {
        let k = buf.get_u64_le();
        let len = buf.get_u64_le() as usize;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(buf.get_u64_le());
        }
        map.insert(k, Arc::new(v));
    }
    Ok(map)
}

struct NeighborOps {
    name: String,
    layout: PartitionLayout,
    recovery: RecoveryMode,
}

impl ObjectOps for NeighborOps {
    fn name(&self) -> &str {
        &self.name
    }

    fn layout(&self) -> &PartitionLayout {
        &self.layout
    }

    fn recovery_mode(&self) -> RecoveryMode {
        self.recovery
    }

    fn encode_partition(&self, server: &PsServer, partition: usize) -> Result<Vec<u8>> {
        server.get(&self.name, partition, |p: &TablePart| encode_part(p))
    }

    fn decode_partition(&self, server: &PsServer, partition: usize, bytes: &[u8]) -> Result<()> {
        let part = decode_part(bytes)?;
        let size = part_bytes(&part);
        server.insert(&self.name, partition, part, size)
    }
}

/// Client handle to a PS neighbor table.
#[derive(Clone)]
pub struct NeighborTableHandle {
    ps: Arc<Ps>,
    name: String,
    layout: PartitionLayout,
}

impl std::fmt::Debug for NeighborTableHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NeighborTableHandle")
            .field("name", &self.name)
            .field("vertices", &self.layout.size)
            .finish()
    }
}

impl NeighborTableHandle {
    /// Create an empty table over vertex ids `[0, num_vertices)`.
    pub fn create(
        ps: &Arc<Ps>,
        name: impl Into<String>,
        num_vertices: u64,
        partitioner: Partitioner,
        recovery: RecoveryMode,
    ) -> Result<Self> {
        let name = name.into();
        let layout =
            PartitionLayout::new(partitioner, num_vertices, ps.num_servers(), ps.num_servers());
        for p in 0..layout.num_partitions {
            let server = ps.server(layout.server_of_partition(p));
            let part = TablePart::default();
            let bytes = part_bytes(&part);
            server.insert(&name, p, part, bytes)?;
        }
        ps.register(Arc::new(NeighborOps {
            name: name.clone(),
            layout: layout.clone(),
            recovery,
        }));
        Ok(NeighborTableHandle { ps: Arc::clone(ps), name, layout })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn num_vertices(&self) -> u64 {
        self.layout.size
    }

    pub fn layout(&self) -> &PartitionLayout {
        &self.layout
    }

    fn check(&self, ids: &[u64]) -> Result<()> {
        for &v in ids {
            if v >= self.layout.size {
                return Err(PsError::IndexOutOfBounds {
                    name: self.name.clone(),
                    index: v,
                    size: self.layout.size,
                });
            }
        }
        Ok(())
    }

    /// Push neighbor lists (replacing any existing entry for the vertex).
    pub fn push(&self, client: &NodeClock, entries: &[(u64, Vec<u64>)]) -> Result<()> {
        let ids: Vec<u64> = entries.iter().map(|(v, _)| *v).collect();
        self.check(&ids)?;
        // Group entry positions by (server, partition).
        let mut groups: FxHashMap<usize, FxHashMap<usize, Vec<usize>>> = FxHashMap::default();
        for (pos, &v) in ids.iter().enumerate() {
            let p = self.layout.partition_of(v);
            let s = self.layout.server_of_partition(p);
            groups.entry(s).or_default().entry(p).or_default().push(pos);
        }
        for (s, parts) in groups {
            let server = self.ps.server(s);
            server.ensure_alive()?;
            let total: u64 = parts
                .values()
                .flatten()
                .map(|&pos| 16 + entries[pos].1.len() as u64 * 8)
                .sum();
            let items: u64 = parts
                .values()
                .flatten()
                .map(|&pos| entries[pos].1.len() as u64 + 1)
                .sum();
            self.ps.network().rpc(
                client,
                server.port(),
                total,
                items * self.ps.config().ops_per_item,
                8,
            );
            for (p, positions) in parts {
                server.update_resize(&self.name, p, |part: &mut TablePart, _old| {
                    for &pos in &positions {
                        let (v, ns) = &entries[pos];
                        part.insert(*v, Arc::new(ns.clone()));
                    }
                    ((), part_bytes(part))
                })?;
            }
        }
        Ok(())
    }

    /// Pull the adjacency of `ids`. Vertices with no entry return an empty
    /// list. Result aligns with the input.
    pub fn pull(&self, client: &NodeClock, ids: &[u64]) -> Result<Vec<Arc<Vec<u64>>>> {
        self.check(ids)?;
        static EMPTY: std::sync::OnceLock<Arc<Vec<u64>>> = std::sync::OnceLock::new();
        let empty = EMPTY.get_or_init(|| Arc::new(Vec::new()));
        let mut out: Vec<Arc<Vec<u64>>> = vec![Arc::clone(empty); ids.len()];
        let mut groups: FxHashMap<usize, FxHashMap<usize, Vec<usize>>> = FxHashMap::default();
        for (pos, &v) in ids.iter().enumerate() {
            let p = self.layout.partition_of(v);
            let s = self.layout.server_of_partition(p);
            groups.entry(s).or_default().entry(p).or_default().push(pos);
        }
        for (s, parts) in groups {
            let server = self.ps.server(s);
            server.ensure_alive()?;
            let mut resp_bytes = 0u64;
            let mut items = 0u64;
            for (p, positions) in &parts {
                server.get(&self.name, *p, |part: &TablePart| {
                    for &pos in positions {
                        if let Some(ns) = part.get(&ids[pos]) {
                            resp_bytes += ns.len() as u64 * 8 + 16;
                            items += ns.len() as u64 + 1;
                            out[pos] = Arc::clone(ns);
                        }
                    }
                })?;
            }
            self.ps.network().rpc(
                client,
                server.port(),
                parts.values().map(|v| v.len() as u64 * 8).sum(),
                items * self.ps.config().ops_per_item,
                resp_bytes,
            );
        }
        Ok(out)
    }

    /// Out-degrees of `ids` (server-side; only counts cross the wire).
    pub fn degrees(&self, client: &NodeClock, ids: &[u64]) -> Result<Vec<u64>> {
        self.check(ids)?;
        let mut out = vec![0u64; ids.len()];
        let mut groups: FxHashMap<usize, FxHashMap<usize, Vec<usize>>> = FxHashMap::default();
        for (pos, &v) in ids.iter().enumerate() {
            let p = self.layout.partition_of(v);
            let s = self.layout.server_of_partition(p);
            groups.entry(s).or_default().entry(p).or_default().push(pos);
        }
        for (s, parts) in groups {
            let server = self.ps.server(s);
            server.ensure_alive()?;
            let n: usize = parts.values().map(Vec::len).sum();
            self.ps.network().rpc(
                client,
                server.port(),
                n as u64 * 8,
                n as u64 * self.ps.config().ops_per_item,
                n as u64 * 8,
            );
            for (p, positions) in parts {
                server.get(&self.name, p, |part: &TablePart| {
                    for &pos in &positions {
                        out[pos] = part.get(&ids[pos]).map_or(0, |v| v.len() as u64);
                    }
                })?;
            }
        }
        Ok(out)
    }

    /// Server-side fixed-size neighbor sampling (GraphSage §IV-E): for each
    /// requested vertex return at most `k` neighbors, sampled without
    /// replacement, so only the sample crosses the wire.
    pub fn sample_neighbors(
        &self,
        client: &NodeClock,
        ids: &[u64],
        k: usize,
        seed: u64,
    ) -> Result<Vec<Vec<u64>>> {
        self.check(ids)?;
        let mut out: Vec<Vec<u64>> = vec![Vec::new(); ids.len()];
        let mut groups: FxHashMap<usize, FxHashMap<usize, Vec<usize>>> = FxHashMap::default();
        for (pos, &v) in ids.iter().enumerate() {
            let p = self.layout.partition_of(v);
            let s = self.layout.server_of_partition(p);
            groups.entry(s).or_default().entry(p).or_default().push(pos);
        }
        for (s, parts) in groups {
            let server = self.ps.server(s);
            server.ensure_alive()?;
            let n: usize = parts.values().map(Vec::len).sum();
            self.ps.network().rpc(
                client,
                server.port(),
                n as u64 * 8,
                (n * k) as u64 * self.ps.config().ops_per_item,
                (n * k) as u64 * 8,
            );
            for (p, positions) in parts {
                server.get(&self.name, p, |part: &TablePart| {
                    for &pos in &positions {
                        let v = ids[pos];
                        if let Some(ns) = part.get(&v) {
                            let mut rng = SplitMix64::new(seed ^ v.wrapping_mul(0x9E37_79B9));
                            if ns.len() <= k {
                                out[pos] = ns.as_ref().clone();
                            } else {
                                // Partial Fisher–Yates over indices.
                                let mut idx: Vec<usize> = (0..ns.len()).collect();
                                for i in 0..k {
                                    let j = i + rng.next_below((idx.len() - i) as u64) as usize;
                                    idx.swap(i, j);
                                }
                                out[pos] = idx[..k].iter().map(|&i| ns[i]).collect();
                            }
                        }
                    }
                })?;
            }
        }
        Ok(out)
    }

    /// Number of vertices with entries (diagnostics).
    pub fn len(&self) -> Result<usize> {
        let mut total = 0;
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            total += server.get(&self.name, p, |part: &TablePart| part.len())?;
        }
        Ok(total)
    }

    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Bytes resident on servers.
    pub fn resident_bytes(&self) -> Result<u64> {
        let mut total = 0;
        for p in 0..self.layout.num_partitions {
            let server = self.ps.server(self.layout.server_of_partition(p));
            total += server.get(&self.name, p, |part: &TablePart| part_bytes(part))?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ps::PsConfig;
    use psgraph_dfs::Dfs;

    fn ps() -> Arc<Ps> {
        Ps::new(PsConfig { servers: 3, ..Default::default() })
    }

    fn table(ps: &Arc<Ps>) -> NeighborTableHandle {
        NeighborTableHandle::create(ps, "adj", 100, Partitioner::Hash, RecoveryMode::Inconsistent)
            .unwrap()
    }

    #[test]
    fn push_pull_roundtrip() {
        let ps = ps();
        let c = NodeClock::new();
        let t = table(&ps);
        t.push(&c, &[(1, vec![2, 3, 4]), (2, vec![1]), (99, vec![0])]).unwrap();
        let got = t.pull(&c, &[2, 99, 1, 50]).unwrap();
        assert_eq!(*got[0], vec![1]);
        assert_eq!(*got[1], vec![0]);
        assert_eq!(*got[2], vec![2, 3, 4]);
        assert!(got[3].is_empty(), "missing vertex reads as empty");
        assert_eq!(t.len().unwrap(), 3);
        assert!(!t.is_empty().unwrap());
    }

    #[test]
    fn push_replaces_existing_entry() {
        let ps = ps();
        let c = NodeClock::new();
        let t = table(&ps);
        t.push(&c, &[(5, vec![1, 2])]).unwrap();
        t.push(&c, &[(5, vec![9])]).unwrap();
        assert_eq!(*t.pull(&c, &[5]).unwrap()[0], vec![9]);
    }

    #[test]
    fn degrees_match_entries() {
        let ps = ps();
        let c = NodeClock::new();
        let t = table(&ps);
        t.push(&c, &[(0, vec![1, 2, 3]), (1, vec![])]).unwrap();
        assert_eq!(t.degrees(&c, &[0, 1, 2]).unwrap(), vec![3, 0, 0]);
    }

    #[test]
    fn out_of_range_rejected() {
        let ps = ps();
        let c = NodeClock::new();
        let t = table(&ps);
        assert!(t.pull(&c, &[100]).is_err());
        assert!(t.push(&c, &[(100, vec![])]).is_err());
    }

    #[test]
    fn sampling_bounds_and_determinism() {
        let ps = ps();
        let c = NodeClock::new();
        let t = table(&ps);
        let big: Vec<u64> = (1..=50).collect();
        t.push(&c, &[(7, big.clone()), (8, vec![1, 2])]).unwrap();
        let s1 = t.sample_neighbors(&c, &[7, 8, 9], 10, 42).unwrap();
        assert_eq!(s1[0].len(), 10);
        assert_eq!(s1[1], vec![1, 2], "small lists returned whole");
        assert!(s1[2].is_empty());
        // Sampled values come from the true neighbor set, no duplicates.
        let set: std::collections::HashSet<u64> = s1[0].iter().copied().collect();
        assert_eq!(set.len(), 10);
        assert!(set.iter().all(|v| big.contains(v)));
        // Deterministic per (seed, vertex).
        let s2 = t.sample_neighbors(&c, &[7], 10, 42).unwrap();
        assert_eq!(s1[0], s2[0]);
        let s3 = t.sample_neighbors(&c, &[7], 10, 43).unwrap();
        assert_ne!(s1[0], s3[0], "different seed should change the sample");
    }

    #[test]
    fn memory_grows_with_pushes() {
        let ps = ps();
        let c = NodeClock::new();
        let t = table(&ps);
        let before = t.resident_bytes().unwrap();
        t.push(&c, &[(1, (0..1000).collect())]).unwrap();
        assert!(t.resident_bytes().unwrap() >= before + 8000);
    }

    #[test]
    fn oom_on_tiny_server_budget() {
        let ps = Ps::new(PsConfig { servers: 1, memory_per_server: 512, ..Default::default() });
        let c = NodeClock::new();
        let t = NeighborTableHandle::create(
            &ps, "adj", 100, Partitioner::Hash, RecoveryMode::Inconsistent,
        )
        .unwrap();
        let err = t.push(&c, &[(1, (0..10_000).collect())]).unwrap_err();
        assert!(matches!(err, PsError::Oom(_)));
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let ps = ps();
        let c = NodeClock::new();
        let dfs = Dfs::in_memory();
        let t = table(&ps);
        t.push(&c, &[(1, vec![2, 3]), (50, vec![60, 70, 80])]).unwrap();
        ps.checkpoint(&dfs, "adj").unwrap();
        for s in 0..ps.num_servers() {
            ps.kill_server(s);
            ps.restart_server(s, c.now());
            ps.recover_server(s, &dfs, &c).unwrap();
        }
        assert_eq!(*t.pull(&c, &[1]).unwrap()[0], vec![2, 3]);
        assert_eq!(*t.pull(&c, &[50]).unwrap()[0], vec![60, 70, 80]);
        assert_eq!(t.len().unwrap(), 2);
    }

    #[test]
    fn encode_decode_part_roundtrip() {
        let mut part = TablePart::default();
        part.insert(3, Arc::new(vec![1, 2]));
        part.insert(9, Arc::new(vec![]));
        let decoded = decode_part(&encode_part(&part)).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(*decoded[&3], vec![1, 2]);
        assert!(decoded[&9].is_empty());
        assert!(decode_part(&[1, 2]).is_err());
    }
}
