//! Element types storable in PS vectors/matrices, with fixed-width
//! little-endian encoding for checkpoints and additive merge semantics for
//! `push_add`.

use psgraph_sim::bytes::{Buf, BufMut};

/// A numeric element of a PS data structure.
pub trait Element: Copy + Send + Sync + Default + PartialEq + std::fmt::Debug + 'static {
    /// Encoded width in bytes.
    const WIDTH: usize;

    /// Additive merge used by `push_add` (saturating for integers).
    fn add(self, other: Self) -> Self;

    /// Lossy view as `f64` (server-side aggregates, convergence checks).
    fn to_f64(self) -> f64;

    /// Append the little-endian encoding to `buf`.
    fn encode(&self, buf: &mut impl BufMut);

    /// Decode from the front of `buf` (must hold at least `WIDTH` bytes).
    fn decode(buf: &mut impl Buf) -> Self;
}

impl Element for f64 {
    const WIDTH: usize = 8;

    fn add(self, other: Self) -> Self {
        self + other
    }

    fn to_f64(self) -> f64 {
        self
    }

    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_f64_le(*self);
    }

    fn decode(buf: &mut impl Buf) -> Self {
        buf.get_f64_le()
    }
}

impl Element for f32 {
    const WIDTH: usize = 4;

    fn add(self, other: Self) -> Self {
        self + other
    }

    fn to_f64(self) -> f64 {
        self as f64
    }

    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_f32_le(*self);
    }

    fn decode(buf: &mut impl Buf) -> Self {
        buf.get_f32_le()
    }
}

impl Element for u64 {
    const WIDTH: usize = 8;

    fn add(self, other: Self) -> Self {
        self.saturating_add(other)
    }

    fn to_f64(self) -> f64 {
        self as f64
    }

    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(*self);
    }

    fn decode(buf: &mut impl Buf) -> Self {
        buf.get_u64_le()
    }
}

impl Element for i64 {
    const WIDTH: usize = 8;

    fn add(self, other: Self) -> Self {
        self.saturating_add(other)
    }

    fn to_f64(self) -> f64 {
        self as f64
    }

    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_i64_le(*self);
    }

    fn decode(buf: &mut impl Buf) -> Self {
        buf.get_i64_le()
    }
}

impl Element for u32 {
    const WIDTH: usize = 4;

    fn add(self, other: Self) -> Self {
        self.saturating_add(other)
    }

    fn to_f64(self) -> f64 {
        self as f64
    }

    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(*self);
    }

    fn decode(buf: &mut impl Buf) -> Self {
        buf.get_u32_le()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<E: Element>(v: E) -> E {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        assert_eq!(buf.len(), E::WIDTH);
        E::decode(&mut buf.as_slice())
    }

    #[test]
    fn encode_decode_roundtrips() {
        assert_eq!(roundtrip(3.5f64), 3.5);
        assert_eq!(roundtrip(-1.25f32), -1.25);
        assert_eq!(roundtrip(u64::MAX), u64::MAX);
        assert_eq!(roundtrip(-42i64), -42);
        assert_eq!(roundtrip(7u32), 7);
    }

    #[test]
    fn add_semantics() {
        assert_eq!(1.5f64.add(2.5), 4.0);
        assert_eq!(u64::MAX.add(1), u64::MAX, "saturating");
        assert_eq!(i64::MAX.add(1), i64::MAX, "saturating");
        assert_eq!(3u32.add(4), 7);
    }

    #[test]
    fn defaults_are_zero() {
        assert_eq!(f64::default(), 0.0);
        assert_eq!(u64::default(), 0);
    }
}
