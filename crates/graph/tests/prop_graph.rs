//! Property tests for graph containers and generators, using the in-tree
//! harness.

use psgraph_graph::{gen, EdgeList};
use psgraph_harness::prop::{check, Source};
use psgraph_harness::{prop_assert, prop_assert_eq};

fn arb_graph(src: &mut Source) -> EdgeList {
    let n = src.u64_range(1, 80);
    let edges = src.vec_with(0, 300, |s| (s.u64_range(0, n), s.u64_range(0, n)));
    EdgeList::new(n, edges)
}

#[test]
fn dedup_is_idempotent_and_duplicate_free() {
    check("dedup_is_idempotent_and_duplicate_free", arb_graph, |g| {
        let d = g.dedup();
        prop_assert_eq!(d.num_vertices(), g.num_vertices());
        let mut seen = std::collections::HashSet::new();
        for &e in d.edges() {
            prop_assert!(seen.insert(e), "duplicate edge {:?}", e);
            prop_assert!(g.edges().contains(&e), "invented edge {:?}", e);
        }
        let dd = d.dedup();
        prop_assert_eq!(dd.edges(), d.edges());
        Ok(())
    });
}

#[test]
fn undirected_view_is_symmetric() {
    check("undirected_view_is_symmetric", arb_graph, |g| {
        let und = g.undirected();
        let set: std::collections::HashSet<(u64, u64)> = und.edges().iter().copied().collect();
        for &(s, d) in und.edges() {
            prop_assert!(set.contains(&(d, s)), "missing reverse of ({}, {})", s, d);
        }
        for &(s, d) in g.edges() {
            if s != d {
                prop_assert!(set.contains(&(s, d)), "dropped edge ({}, {})", s, d);
            }
        }
        Ok(())
    });
}

#[test]
fn generators_stay_in_vertex_range() {
    check(
        "generators_stay_in_vertex_range",
        |src: &mut Source| {
            (src.u64_range(2, 512), src.usize_range(0, 2000), src.any_u64(), src.bool())
        },
        |&(n, m, seed, use_rmat)| {
            let g = if use_rmat {
                gen::rmat(n.next_power_of_two(), m, Default::default(), seed)
            } else {
                gen::erdos_renyi(n, m, seed)
            };
            prop_assert!(g.edges().len() <= m, "{} edges for request {}", g.edges().len(), m);
            for &(s, d) in g.edges() {
                prop_assert!(s < g.num_vertices() && d < g.num_vertices());
            }
            Ok(())
        },
    );
}

#[test]
fn out_degrees_sum_to_edge_count() {
    check("out_degrees_sum_to_edge_count", arb_graph, |g| {
        let total: u64 = g.out_degrees().iter().sum();
        prop_assert_eq!(total as usize, g.edges().len());
        // Neighbor tables dedup within each list, so they hold one entry
        // per *distinct* (src, dst) pair (self-loops included).
        let distinct: std::collections::HashSet<(u64, u64)> =
            g.edges().iter().copied().collect();
        let tables = g.neighbor_tables();
        let table_total: usize = tables.values().map(Vec::len).sum();
        prop_assert_eq!(table_total, distinct.len());
        Ok(())
    });
}
