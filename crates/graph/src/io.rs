//! Graph I/O against the mini-HDFS: the "original dataset is stored on
//! HDFS, each data item is a pair (src, dst), vertex indices encoded as
//! long int" format from paper §IV.
//!
//! Two formats exist because the two systems in the paper consume
//! different ones: a compact binary format (what PSGraph/Spark reads) and
//! a text format of `src<TAB>dst` lines (what raw logs look like; Euler's
//! preprocessing pipeline parses and rewrites it).

use psgraph_sim::bytes::{Buf, BufMut};
use psgraph_dfs::{Dfs, DfsError};
use psgraph_sim::NodeClock;

use crate::edgelist::EdgeList;

/// Write the binary edge-list format: header (n, m) then little-endian
/// (src, dst) pairs.
pub fn write_binary(
    dfs: &Dfs,
    path: &str,
    g: &EdgeList,
    clock: &NodeClock,
) -> Result<(), DfsError> {
    let mut buf = Vec::with_capacity(16 + g.num_edges() * 16);
    buf.put_u64_le(g.num_vertices());
    buf.put_u64_le(g.num_edges() as u64);
    for &(s, d) in g.edges() {
        buf.put_u64_le(s);
        buf.put_u64_le(d);
    }
    dfs.write(path, &buf, clock)
}

/// Read the binary edge-list format.
pub fn read_binary(dfs: &Dfs, path: &str, clock: &NodeClock) -> Result<EdgeList, DfsError> {
    let bytes = dfs.read(path, clock)?;
    let mut buf = &bytes[..];
    if buf.remaining() < 16 {
        return Err(DfsError::Corrupt { path: path.to_string(), block: 0 });
    }
    let n = buf.get_u64_le();
    let m = buf.get_u64_le() as usize;
    if buf.remaining() < m * 16 {
        return Err(DfsError::Corrupt { path: path.to_string(), block: 0 });
    }
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let s = buf.get_u64_le();
        let d = buf.get_u64_le();
        edges.push((s, d));
    }
    Ok(EdgeList::new(n, edges))
}

/// Write the raw text format (`src\tdst\n` per line) — the log-like input
/// Euler must preprocess.
pub fn write_text(
    dfs: &Dfs,
    path: &str,
    g: &EdgeList,
    clock: &NodeClock,
) -> Result<(), DfsError> {
    let mut s = String::with_capacity(g.num_edges() * 12);
    for &(src, dst) in g.edges() {
        s.push_str(&src.to_string());
        s.push('\t');
        s.push_str(&dst.to_string());
        s.push('\n');
    }
    dfs.write(path, s.as_bytes(), clock)
}

/// Parse the raw text format.
pub fn read_text(dfs: &Dfs, path: &str, clock: &NodeClock) -> Result<EdgeList, DfsError> {
    let bytes = dfs.read(path, clock)?;
    let text = std::str::from_utf8(&bytes)
        .map_err(|_| DfsError::Corrupt { path: path.to_string(), block: 0 })?;
    let mut edges = Vec::new();
    for line in text.lines() {
        let mut it = line.split('\t');
        let (Some(a), Some(b)) = (it.next(), it.next()) else {
            return Err(DfsError::Corrupt { path: path.to_string(), block: 0 });
        };
        let (Ok(s), Ok(d)) = (a.parse(), b.parse()) else {
            return Err(DfsError::Corrupt { path: path.to_string(), block: 0 });
        };
        edges.push((s, d));
    }
    Ok(EdgeList::from_pairs(edges))
}

/// Write a weighted edge list (Fast Unfolding input): header (n, m),
/// then `(src, dst, weight)` triples.
pub fn write_weighted(
    dfs: &Dfs,
    path: &str,
    g: &crate::edgelist::WeightedEdgeList,
    clock: &NodeClock,
) -> Result<(), DfsError> {
    let mut buf = Vec::with_capacity(16 + g.num_edges() * 24);
    buf.put_u64_le(g.num_vertices());
    buf.put_u64_le(g.num_edges() as u64);
    for &(s, d, w) in g.edges() {
        buf.put_u64_le(s);
        buf.put_u64_le(d);
        buf.put_f64_le(w);
    }
    dfs.write(path, &buf, clock)
}

/// Read a weighted edge list written by [`write_weighted`].
pub fn read_weighted(
    dfs: &Dfs,
    path: &str,
    clock: &NodeClock,
) -> Result<crate::edgelist::WeightedEdgeList, DfsError> {
    let bytes = dfs.read(path, clock)?;
    let mut buf = &bytes[..];
    if buf.remaining() < 16 {
        return Err(DfsError::Corrupt { path: path.to_string(), block: 0 });
    }
    let n = buf.get_u64_le();
    let m = buf.get_u64_le() as usize;
    if buf.remaining() < m * 24 {
        return Err(DfsError::Corrupt { path: path.to_string(), block: 0 });
    }
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let s = buf.get_u64_le();
        let d = buf.get_u64_le();
        let w = buf.get_f64_le();
        edges.push((s, d, w));
    }
    Ok(crate::edgelist::WeightedEdgeList::new(n, edges))
}

/// Write per-vertex features + labels (the DS3 classification inputs):
/// header (n, dim), then `n × dim` f32 features, then `n` u32 labels.
pub fn write_features(
    dfs: &Dfs,
    path: &str,
    features: &[Vec<f32>],
    labels: &[usize],
    clock: &NodeClock,
) -> Result<(), DfsError> {
    assert_eq!(features.len(), labels.len());
    let dim = features.first().map_or(0, Vec::len);
    let mut buf = Vec::with_capacity(16 + features.len() * (dim * 4 + 4));
    buf.put_u64_le(features.len() as u64);
    buf.put_u64_le(dim as u64);
    for f in features {
        assert_eq!(f.len(), dim, "ragged feature rows");
        for &x in f {
            buf.put_f32_le(x);
        }
    }
    for &l in labels {
        buf.put_u32_le(l as u32);
    }
    dfs.write(path, &buf, clock)
}

/// Read features + labels.
#[allow(clippy::type_complexity)]
pub fn read_features(
    dfs: &Dfs,
    path: &str,
    clock: &NodeClock,
) -> Result<(Vec<Vec<f32>>, Vec<usize>), DfsError> {
    let bytes = dfs.read(path, clock)?;
    let mut buf = &bytes[..];
    if buf.remaining() < 16 {
        return Err(DfsError::Corrupt { path: path.to_string(), block: 0 });
    }
    let n = buf.get_u64_le() as usize;
    let dim = buf.get_u64_le() as usize;
    if buf.remaining() < n * (dim * 4 + 4) {
        return Err(DfsError::Corrupt { path: path.to_string(), block: 0 });
    }
    let mut features = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row = Vec::with_capacity(dim);
        for _ in 0..dim {
            row.push(buf.get_f32_le());
        }
        features.push(row);
    }
    let labels = (0..n).map(|_| buf.get_u32_le() as usize).collect();
    Ok((features, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn binary_roundtrip() {
        let dfs = Dfs::in_memory();
        let clk = NodeClock::new();
        let g = gen::rmat(100, 500, Default::default(), 1);
        write_binary(&dfs, "/data/g.bin", &g, &clk).unwrap();
        let back = read_binary(&dfs, "/data/g.bin", &clk).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn text_roundtrip() {
        let dfs = Dfs::in_memory();
        let clk = NodeClock::new();
        let g = EdgeList::new(4, vec![(0, 1), (2, 3), (3, 0)]);
        write_text(&dfs, "/data/g.txt", &g, &clk).unwrap();
        let back = read_text(&dfs, "/data/g.txt", &clk).unwrap();
        assert_eq!(back.edges(), g.edges());
    }

    #[test]
    fn text_is_bigger_than_binary_on_disk() {
        let dfs = Dfs::in_memory();
        let clk = NodeClock::new();
        let g = gen::rmat(1000, 10_000, Default::default(), 2);
        write_binary(&dfs, "/b", &g, &clk).unwrap();
        write_text(&dfs, "/t", &g, &clk).unwrap();
        let b = dfs.status("/b").unwrap().len;
        let t = dfs.status("/t").unwrap().len;
        assert!(t as f64 > b as f64 * 0.4, "text {t} vs binary {b}");
    }

    #[test]
    fn corrupt_binary_detected() {
        let dfs = Dfs::in_memory();
        let clk = NodeClock::new();
        dfs.write("/bad", &[1, 2, 3], &clk).unwrap();
        assert!(read_binary(&dfs, "/bad", &clk).is_err());
        // Truncated body.
        let mut buf = Vec::new();
        buf.put_u64_le(10);
        buf.put_u64_le(1000);
        dfs.write("/trunc", &buf, &clk).unwrap();
        assert!(read_binary(&dfs, "/trunc", &clk).is_err());
    }

    #[test]
    fn corrupt_text_detected() {
        let dfs = Dfs::in_memory();
        let clk = NodeClock::new();
        dfs.write("/bad", b"1\tx\n", &clk).unwrap();
        assert!(read_text(&dfs, "/bad", &clk).is_err());
        dfs.write("/noline", b"42\n", &clk).unwrap();
        assert!(read_text(&dfs, "/noline", &clk).is_err());
    }

    #[test]
    fn features_roundtrip() {
        let dfs = Dfs::in_memory();
        let clk = NodeClock::new();
        let feats = vec![vec![1.0f32, 2.0], vec![-0.5, 0.25], vec![0.0, 9.0]];
        let labels = vec![0usize, 1, 1];
        write_features(&dfs, "/f", &feats, &labels, &clk).unwrap();
        let (f2, l2) = read_features(&dfs, "/f", &clk).unwrap();
        assert_eq!(f2, feats);
        assert_eq!(l2, labels);
    }

    #[test]
    fn weighted_roundtrip() {
        let dfs = Dfs::in_memory();
        let clk = NodeClock::new();
        let w = crate::edgelist::WeightedEdgeList::new(
            5,
            vec![(0, 1, 0.5), (3, 4, 2.25), (1, 1, -1.0)],
        );
        write_weighted(&dfs, "/w", &w, &clk).unwrap();
        let back = read_weighted(&dfs, "/w", &clk).unwrap();
        assert_eq!(back, w);
        // Truncated payload detected.
        dfs.write("/bad", &[0u8; 10], &clk).unwrap();
        assert!(read_weighted(&dfs, "/bad", &clk).is_err());
    }

    #[test]
    fn missing_file_propagates() {
        let dfs = Dfs::in_memory();
        let clk = NodeClock::new();
        assert!(matches!(
            read_binary(&dfs, "/nope", &clk),
            Err(DfsError::NotFound(_))
        ));
    }
}
