//! Graph data structures, synthetic generators, DFS I/O, and exact
//! reference algorithms.
//!
//! The paper's datasets are proprietary Tencent social graphs (DS1: 0.8 B
//! vertices / 11 B edges; DS2: 2 B / 140 B; DS3: 30 M / 100 M). This crate
//! substitutes seeded RMAT-style power-law graphs scaled down ~4000×
//! with the same vertex:edge ratios ([`datasets`]), which preserves the
//! degree skew that drives both PSGraph's wins and GraphX's OOMs.
//!
//! [`metrics`] holds exact single-threaded reference implementations
//! (power-iteration PageRank, peeling K-core, exact triangle count,
//! modularity) used by the test suites to validate the distributed
//! algorithms, never by the benchmarks themselves.

pub mod datasets;
pub mod edgelist;
pub mod gen;
pub mod io;
pub mod metrics;

pub use datasets::{Dataset, DatasetSpec};
pub use edgelist::{EdgeList, WeightedEdgeList};
