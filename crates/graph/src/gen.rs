//! Seeded synthetic graph generators.
//!
//! [`rmat`] produces the power-law degree distributions of real social
//! graphs (Chakrabarti et al. 2004) — the skew is what makes GraphX's
//! joins explode on hub vertices, so preserving it is essential for the
//! Fig. 6 reproduction. [`sbm2`] builds a two-community stochastic block
//! model with correlated vertex features for the GraphSage / Table I
//! classification task.

use psgraph_sim::SplitMix64;

use crate::edgelist::EdgeList;

/// RMAT parameters. The classic social-graph setting is
/// `(a, b, c) = (0.57, 0.19, 0.19)`.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    pub a: f64,
    pub b: f64,
    pub c: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams { a: 0.57, b: 0.19, c: 0.19 }
    }
}

/// Generate an RMAT graph with `num_vertices` (rounded up to a power of
/// two internally, then mapped back) and `num_edges` directed edges.
/// Self-loops are rerolled; duplicate edges are kept (real logs have
/// them; callers `dedup()` when needed).
pub fn rmat(num_vertices: u64, num_edges: usize, params: RmatParams, seed: u64) -> EdgeList {
    assert!(num_vertices >= 2, "need at least two vertices");
    let levels = 64 - (num_vertices - 1).leading_zeros();
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::with_capacity(num_edges);
    let ab = params.a + params.b;
    let abc = ab + params.c;
    assert!(abc < 1.0, "rmat probabilities must sum below 1");
    while edges.len() < num_edges {
        let mut src = 0u64;
        let mut dst = 0u64;
        for _ in 0..levels {
            let r = rng.next_f64();
            let (sbit, dbit) = if r < params.a {
                (0, 0)
            } else if r < ab {
                (0, 1)
            } else if r < abc {
                (1, 0)
            } else {
                (1, 1)
            };
            src = (src << 1) | sbit;
            dst = (dst << 1) | dbit;
        }
        src %= num_vertices;
        dst %= num_vertices;
        if src == dst {
            continue;
        }
        edges.push((src, dst));
    }
    EdgeList::new(num_vertices, edges)
}

/// Erdős–Rényi G(n, m): `num_edges` uniform random edges, no self-loops.
pub fn erdos_renyi(num_vertices: u64, num_edges: usize, seed: u64) -> EdgeList {
    assert!(num_vertices >= 2);
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::with_capacity(num_edges);
    while edges.len() < num_edges {
        let s = rng.next_below(num_vertices);
        let d = rng.next_below(num_vertices);
        if s != d {
            edges.push((s, d));
        }
    }
    EdgeList::new(num_vertices, edges)
}

/// A ring graph `0→1→…→n-1→0` (deterministic structure for unit tests).
pub fn ring(num_vertices: u64) -> EdgeList {
    assert!(num_vertices >= 2);
    let edges = (0..num_vertices).map(|i| (i, (i + 1) % num_vertices)).collect();
    EdgeList::new(num_vertices, edges)
}

/// A complete directed graph (every ordered pair, no loops).
pub fn complete(num_vertices: u64) -> EdgeList {
    let mut edges = Vec::new();
    for s in 0..num_vertices {
        for d in 0..num_vertices {
            if s != d {
                edges.push((s, d));
            }
        }
    }
    EdgeList::new(num_vertices, edges)
}

/// Two-community stochastic block model with node features: vertices in
/// `[0, n/2)` are community 0, the rest community 1. Intra-community edges
/// appear with expected degree `deg_in`, inter-community with `deg_out`.
/// Features are `feat_dim`-dimensional Gaussians centred at ±μ per
/// community — linearly separable with noise, giving GraphSage a
/// learnable, non-trivial task (paper's WeChat Pay node classification).
pub struct Sbm2 {
    pub graph: EdgeList,
    pub features: Vec<Vec<f32>>,
    pub labels: Vec<usize>,
}

pub fn sbm2(
    num_vertices: u64,
    deg_in: f64,
    deg_out: f64,
    feat_dim: usize,
    feature_noise: f32,
    seed: u64,
) -> Sbm2 {
    assert!(num_vertices >= 4);
    let mut rng = SplitMix64::new(seed);
    let half = num_vertices / 2;
    let n_in = (num_vertices as f64 * deg_in / 2.0) as usize;
    let n_out = (num_vertices as f64 * deg_out / 2.0) as usize;
    let mut edges = Vec::with_capacity((n_in + n_out) * 2);
    // Intra-community edges.
    let mut placed = 0;
    while placed < n_in {
        let comm = rng.next_below(2);
        let base = comm * half;
        let len = if comm == 0 { half } else { num_vertices - half };
        let s = base + rng.next_below(len);
        let d = base + rng.next_below(len);
        if s != d {
            edges.push((s, d));
            edges.push((d, s));
            placed += 1;
        }
    }
    // Inter-community edges.
    let mut placed = 0;
    while placed < n_out {
        let s = rng.next_below(half);
        let d = half + rng.next_below(num_vertices - half);
        edges.push((s, d));
        edges.push((d, s));
        placed += 1;
    }
    let graph = EdgeList::new(num_vertices, edges);

    let mut features = Vec::with_capacity(num_vertices as usize);
    let mut labels = Vec::with_capacity(num_vertices as usize);
    for v in 0..num_vertices {
        let label = usize::from(v >= half);
        let mu = if label == 0 { 0.5f32 } else { -0.5f32 };
        let feat: Vec<f32> = (0..feat_dim)
            .map(|_| {
                // Box–Muller-ish noise from two uniforms (cheap, adequate).
                let u = rng.next_f64() as f32 - 0.5;
                let w = rng.next_f64() as f32 - 0.5;
                mu + feature_noise * (u + w)
            })
            .collect();
        features.push(feat);
        labels.push(label);
    }
    Sbm2 { graph, features, labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_shape_and_determinism() {
        let g1 = rmat(1000, 5000, RmatParams::default(), 42);
        let g2 = rmat(1000, 5000, RmatParams::default(), 42);
        assert_eq!(g1, g2);
        assert_eq!(g1.num_edges(), 5000);
        assert!(g1.edges().iter().all(|&(s, d)| s < 1000 && d < 1000 && s != d));
        let g3 = rmat(1000, 5000, RmatParams::default(), 43);
        assert_ne!(g1, g3);
    }

    #[test]
    fn rmat_is_skewed() {
        // Power-law: the hottest vertex should dominate the mean degree.
        let g = rmat(10_000, 100_000, RmatParams::default(), 7);
        let deg = g.out_degrees();
        let max = *deg.iter().max().unwrap();
        let mean = 100_000 / 10_000;
        assert!(
            max > 20 * mean,
            "rmat should produce hubs: max {max} vs mean {mean}"
        );
    }

    #[test]
    fn erdos_renyi_is_flat() {
        let g = erdos_renyi(10_000, 100_000, 7);
        assert_eq!(g.num_edges(), 100_000);
        let deg = g.out_degrees();
        let max = *deg.iter().max().unwrap();
        assert!(max < 60, "ER should have no hubs: max {max}");
    }

    #[test]
    fn ring_and_complete_shapes() {
        let r = ring(5);
        assert_eq!(r.num_edges(), 5);
        assert_eq!(r.out_degrees(), vec![1; 5]);
        let k = complete(4);
        assert_eq!(k.num_edges(), 12);
        assert_eq!(k.out_degrees(), vec![3; 4]);
    }

    #[test]
    fn sbm2_structure_labels_features() {
        let s = sbm2(200, 8.0, 0.5, 16, 0.3, 9);
        assert_eq!(s.labels.len(), 200);
        assert_eq!(s.features.len(), 200);
        assert_eq!(s.features[0].len(), 16);
        assert_eq!(s.labels[0], 0);
        assert_eq!(s.labels[199], 1);
        // Community structure: intra edges dominate.
        let half = 100u64;
        let (mut intra, mut inter) = (0, 0);
        for &(a, b) in s.graph.edges() {
            if (a < half) == (b < half) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 5 * inter, "intra {intra} vs inter {inter}");
        // Features carry the label signal on average.
        let mean0: f32 = s.features[..100].iter().flatten().sum::<f32>() / (100.0 * 16.0);
        let mean1: f32 = s.features[100..].iter().flatten().sum::<f32>() / (100.0 * 16.0);
        assert!(mean0 > 0.3 && mean1 < -0.3, "means {mean0} / {mean1}");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rmat_rejects_tiny() {
        rmat(1, 10, RmatParams::default(), 0);
    }
}
