//! Dataset presets: scaled-down stand-ins for the paper's DS1/DS2/DS3.
//!
//! | Paper | vertices | edges | here (scale = 1.0) |
//! |---|---|---|---|
//! | DS1 | 0.8 B | 11 B | 200 k / 2.75 M |
//! | DS2 | 2 B | 140 B | 500 k / 35 M |
//! | DS3 | 30 M | 100 M | 60 k / 200 k (+ features/labels) |
//!
//! Every preset is ~4000× smaller than the paper's graph with the same
//! vertex:edge ratio. Resource budgets in the experiment harness are
//! scaled by the same factor (see `psgraph-bench`), so relative behaviour
//! (who OOMs, who wins, by what factor) is preserved. `scale` shrinks
//! further for quick runs — e.g. `scale = 0.1` for CI-speed benches.

use crate::edgelist::EdgeList;
use crate::gen::{self, RmatParams, Sbm2};

/// How many times smaller than the paper's dataset the `scale = 1.0`
/// preset is. Experiment harnesses divide memory budgets by this.
pub const PAPER_SCALE_DOWN: f64 = 4000.0;

/// Identifies one of the paper's datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    Ds1,
    Ds2,
    Ds3,
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dataset::Ds1 => write!(f, "DS1"),
            Dataset::Ds2 => write!(f, "DS2"),
            Dataset::Ds3 => write!(f, "DS3"),
        }
    }
}

/// Concrete sizing of a dataset instance.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    pub dataset: Dataset,
    pub vertices: u64,
    pub edges: usize,
    /// Paper's figures for reference.
    pub paper_vertices: f64,
    pub paper_edges: f64,
}

impl Dataset {
    /// Sizing at a given scale (`1.0` = the full preset above).
    pub fn spec(self, scale: f64) -> DatasetSpec {
        assert!(scale > 0.0, "scale must be positive");
        let (v, e, pv, pe) = match self {
            Dataset::Ds1 => (200_000.0, 2_750_000.0, 0.8e9, 11e9),
            Dataset::Ds2 => (500_000.0, 35_000_000.0, 2e9, 140e9),
            Dataset::Ds3 => (60_000.0, 200_000.0, 30e6, 100e6),
        };
        DatasetSpec {
            dataset: self,
            vertices: ((v * scale) as u64).max(64),
            edges: ((e * scale) as usize).max(256),
            paper_vertices: pv,
            paper_edges: pe,
        }
    }

    /// Generate the graph (power-law RMAT; seeded deterministically per
    /// dataset).
    pub fn generate(self, scale: f64) -> EdgeList {
        let spec = self.spec(scale);
        let seed = match self {
            Dataset::Ds1 => 0xD51,
            Dataset::Ds2 => 0xD52,
            Dataset::Ds3 => 0xD53,
        };
        gen::rmat(spec.vertices, spec.edges, RmatParams::default(), seed)
    }

    /// DS3 with features and labels for the GraphSage task (Table I):
    /// community-structured with informative features.
    pub fn generate_ds3_features(scale: f64, feat_dim: usize) -> Sbm2 {
        let spec = Dataset::Ds3.spec(scale);
        // Feature noise tuned so a trained GraphSage lands near the
        // paper's ~91.5% accuracy rather than saturating the task.
        let avg_deg = spec.edges as f64 / spec.vertices as f64;
        gen::sbm2(
            spec.vertices,
            avg_deg * 1.4,
            avg_deg * 0.6,
            feat_dim,
            4.0,
            0xD53F,
        )
    }

    /// End-to-end scale-down factor from the paper's dataset to this
    /// instance (used to scale memory budgets).
    pub fn scale_down(self, scale: f64) -> f64 {
        let spec = self.spec(scale);
        spec.paper_vertices / spec.vertices as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_preserve_paper_ratios() {
        let ds1 = Dataset::Ds1.spec(1.0);
        let ds2 = Dataset::Ds2.spec(1.0);
        // DS2/DS1 vertex ratio 2.5, edge ratio ~12.7 in the paper.
        let vr = ds2.vertices as f64 / ds1.vertices as f64;
        let er = ds2.edges as f64 / ds1.edges as f64;
        assert!((vr - 2.5).abs() < 0.01, "vertex ratio {vr}");
        assert!((er - 12.7).abs() < 0.1, "edge ratio {er}");
    }

    #[test]
    fn generation_is_deterministic_and_sized() {
        let a = Dataset::Ds3.generate(0.1);
        let b = Dataset::Ds3.generate(0.1);
        assert_eq!(a, b);
        let spec = Dataset::Ds3.spec(0.1);
        assert_eq!(a.num_vertices(), spec.vertices);
        assert_eq!(a.num_edges(), spec.edges);
    }

    #[test]
    fn scale_shrinks_with_floor() {
        let tiny = Dataset::Ds1.spec(1e-9);
        assert_eq!(tiny.vertices, 64);
        assert_eq!(tiny.edges, 256);
        let small = Dataset::Ds1.spec(0.01);
        assert_eq!(small.vertices, 2000);
    }

    #[test]
    fn ds3_features_shapes() {
        let s = Dataset::generate_ds3_features(0.02, 8);
        let spec = Dataset::Ds3.spec(0.02);
        assert_eq!(s.features.len() as u64, spec.vertices);
        assert_eq!(s.labels.len() as u64, spec.vertices);
        assert_eq!(s.features[0].len(), 8);
        assert!(s.graph.num_edges() > 0);
    }

    #[test]
    fn scale_down_factor() {
        let f = Dataset::Ds1.scale_down(1.0);
        assert!((f - 4000.0).abs() < 1.0, "got {f}");
        // Shrinking the instance increases the factor.
        assert!(Dataset::Ds1.scale_down(0.1) > f * 9.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Dataset::Ds1.to_string(), "DS1");
        assert_eq!(Dataset::Ds2.to_string(), "DS2");
        assert_eq!(Dataset::Ds3.to_string(), "DS3");
    }
}
