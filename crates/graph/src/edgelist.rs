//! Edge lists and adjacency construction.

use psgraph_sim::{FxHashMap, FxHashSet};

/// A directed graph as an edge list over vertex ids `[0, num_vertices)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    num_vertices: u64,
    edges: Vec<(u64, u64)>,
}

impl EdgeList {
    /// Build from raw pairs; `num_vertices` must exceed every endpoint.
    pub fn new(num_vertices: u64, edges: Vec<(u64, u64)>) -> Self {
        debug_assert!(
            edges.iter().all(|&(s, d)| s < num_vertices && d < num_vertices),
            "edge endpoint out of range"
        );
        EdgeList { num_vertices, edges }
    }

    /// Infer the vertex count from the maximum endpoint.
    pub fn from_pairs(edges: Vec<(u64, u64)>) -> Self {
        let n = edges.iter().map(|&(s, d)| s.max(d) + 1).max().unwrap_or(0);
        EdgeList { num_vertices: n, edges }
    }

    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn edges(&self) -> &[(u64, u64)] {
        &self.edges
    }

    pub fn into_edges(self) -> Vec<(u64, u64)> {
        self.edges
    }

    /// Remove duplicate edges and self-loops.
    pub fn dedup(&self) -> EdgeList {
        let mut seen: FxHashSet<(u64, u64)> = FxHashSet::default();
        let edges = self
            .edges
            .iter()
            .filter(|&&(s, d)| s != d && seen.insert((s, d)))
            .copied()
            .collect();
        EdgeList { num_vertices: self.num_vertices, edges }
    }

    /// Symmetric closure: for every `(s, d)` also include `(d, s)`.
    pub fn undirected(&self) -> EdgeList {
        let mut seen: FxHashSet<(u64, u64)> = FxHashSet::default();
        let mut edges = Vec::with_capacity(self.edges.len() * 2);
        for &(s, d) in &self.edges {
            if s == d {
                continue;
            }
            if seen.insert((s, d)) {
                edges.push((s, d));
            }
            if seen.insert((d, s)) {
                edges.push((d, s));
            }
        }
        EdgeList { num_vertices: self.num_vertices, edges }
    }

    /// Out-degrees of all vertices.
    pub fn out_degrees(&self) -> Vec<u64> {
        let mut d = vec![0u64; self.num_vertices as usize];
        for &(s, _) in &self.edges {
            d[s as usize] += 1;
        }
        d
    }

    /// Neighbor tables `(src, sorted dsts)` — the `groupBy` the paper runs
    /// on executors to convert edge partitioning to vertex partitioning.
    pub fn neighbor_tables(&self) -> FxHashMap<u64, Vec<u64>> {
        let mut map: FxHashMap<u64, Vec<u64>> = FxHashMap::default();
        for &(s, d) in &self.edges {
            map.entry(s).or_default().push(d);
        }
        for v in map.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        map
    }

    /// Approximate in-memory/HDFS size in bytes (two u64 per edge).
    pub fn byte_size(&self) -> u64 {
        self.edges.len() as u64 * 16
    }
}

/// A weighted edge list (Fast Unfolding input: `(src, dst, weight)`).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedEdgeList {
    num_vertices: u64,
    edges: Vec<(u64, u64, f64)>,
}

impl WeightedEdgeList {
    pub fn new(num_vertices: u64, edges: Vec<(u64, u64, f64)>) -> Self {
        debug_assert!(edges.iter().all(|&(s, d, _)| s < num_vertices && d < num_vertices));
        WeightedEdgeList { num_vertices, edges }
    }

    /// Unit weights from a plain edge list.
    pub fn from_unweighted(e: &EdgeList) -> Self {
        WeightedEdgeList {
            num_vertices: e.num_vertices(),
            edges: e.edges().iter().map(|&(s, d)| (s, d, 1.0)).collect(),
        }
    }

    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn edges(&self) -> &[(u64, u64, f64)] {
        &self.edges
    }

    /// Total edge weight `m` (each directed edge counted once).
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// Weighted degree per vertex (out + in, as Louvain treats the graph
    /// as undirected).
    pub fn weighted_degrees(&self) -> Vec<f64> {
        let mut k = vec![0.0; self.num_vertices as usize];
        for &(s, d, w) in &self.edges {
            k[s as usize] += w;
            k[d as usize] += w;
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::new(5, vec![(0, 1), (1, 2), (0, 1), (3, 3), (2, 0)])
    }

    #[test]
    fn basic_accessors() {
        let e = sample();
        assert_eq!(e.num_vertices(), 5);
        assert_eq!(e.num_edges(), 5);
        assert_eq!(e.byte_size(), 80);
    }

    #[test]
    fn from_pairs_infers_size() {
        let e = EdgeList::from_pairs(vec![(0, 9), (3, 2)]);
        assert_eq!(e.num_vertices(), 10);
        let empty = EdgeList::from_pairs(vec![]);
        assert_eq!(empty.num_vertices(), 0);
    }

    #[test]
    fn dedup_removes_dupes_and_loops() {
        let e = sample().dedup();
        assert_eq!(e.edges(), &[(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn undirected_symmetric_closure() {
        let e = EdgeList::new(3, vec![(0, 1), (1, 0), (1, 2)]).undirected();
        let mut got = e.edges().to_vec();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
    }

    #[test]
    fn out_degrees_counted() {
        let e = sample();
        assert_eq!(e.out_degrees(), vec![2, 1, 1, 1, 0]);
    }

    #[test]
    fn neighbor_tables_sorted_dedup() {
        let nt = sample().neighbor_tables();
        assert_eq!(nt[&0], vec![1]);
        assert_eq!(nt[&1], vec![2]);
        assert!(!nt.contains_key(&4));
    }

    #[test]
    fn weighted_from_unweighted() {
        let w = WeightedEdgeList::from_unweighted(&EdgeList::new(3, vec![(0, 1), (1, 2)]));
        assert_eq!(w.total_weight(), 2.0);
        assert_eq!(w.weighted_degrees(), vec![1.0, 2.0, 1.0]);
        assert_eq!(w.num_edges(), 2);
        assert_eq!(w.num_vertices(), 3);
    }
}
