//! Exact single-machine reference algorithms for validating the
//! distributed implementations. Deliberately simple and obviously correct;
//! only used on small test graphs.

use psgraph_sim::{FxHashMap, FxHashSet};

use crate::edgelist::{EdgeList, WeightedEdgeList};

/// Dense power-iteration PageRank with damping `d` (the paper's update
/// rule `PR_i = Σ_{j∈N(i)} PR_j / L(j)` corresponds to `d = 1`; the usual
/// damped form is `d = 0.85`). Dangling mass is redistributed uniformly.
pub fn pagerank_exact(g: &EdgeList, damping: f64, iterations: usize) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    let out_deg = g.out_degrees();
    let mut pr = vec![1.0 / n as f64; n];
    for _ in 0..iterations {
        let mut next = vec![(1.0 - damping) / n as f64; n];
        let mut dangling = 0.0;
        for (v, &d) in out_deg.iter().enumerate() {
            if d == 0 {
                dangling += pr[v];
            }
        }
        let dangling_share = damping * dangling / n as f64;
        for x in next.iter_mut() {
            *x += dangling_share;
        }
        for &(s, d) in g.edges() {
            next[d as usize] += damping * pr[s as usize] / out_deg[s as usize] as f64;
        }
        pr = next;
    }
    pr
}

/// Exact K-core decomposition by iterative peeling (Batagelj–Zaversnik
/// style, O(m) flavor). Input treated as undirected.
pub fn kcore_exact(g: &EdgeList) -> Vec<u64> {
    let und = g.undirected();
    let n = und.num_vertices() as usize;
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); n];
    for &(s, d) in und.edges() {
        adj[s as usize].push(d);
    }
    let mut degree: Vec<u64> = adj.iter().map(|a| a.len() as u64).collect();
    let mut core = vec![0u64; n];
    let mut removed = vec![false; n];
    let mut k = 0u64;
    for _ in 0..n {
        // Peel the minimum-degree remaining vertex; its coreness is the
        // running maximum of peel degrees.
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| degree[v])
            .unwrap();
        k = k.max(degree[v]);
        core[v] = k;
        removed[v] = true;
        for &u in &adj[v] {
            let u = u as usize;
            if !removed[u] && degree[u] > 0 {
                degree[u] -= 1;
            }
        }
    }
    core
}

/// Exact triangle count (each triangle counted once). Input treated as
/// undirected; self-loops ignored.
pub fn triangles_exact(g: &EdgeList) -> u64 {
    let und = g.undirected();
    let n = und.num_vertices() as usize;
    let mut adj: Vec<FxHashSet<u64>> = vec![FxHashSet::default(); n];
    for &(s, d) in und.edges() {
        adj[s as usize].insert(d);
    }
    let mut count = 0u64;
    for v in 0..n as u64 {
        for &u in &adj[v as usize] {
            if u <= v {
                continue;
            }
            for &w in &adj[u as usize] {
                if w > u && adj[v as usize].contains(&w) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Exact common-neighbor count for a set of vertex pairs (undirected view).
pub fn common_neighbors_exact(g: &EdgeList, pairs: &[(u64, u64)]) -> Vec<u64> {
    let und = g.undirected();
    let mut adj: FxHashMap<u64, FxHashSet<u64>> = FxHashMap::default();
    for &(s, d) in und.edges() {
        adj.entry(s).or_default().insert(d);
    }
    let empty = FxHashSet::default();
    pairs
        .iter()
        .map(|&(a, b)| {
            let na = adj.get(&a).unwrap_or(&empty);
            let nb = adj.get(&b).unwrap_or(&empty);
            let (small, large) = if na.len() <= nb.len() { (na, nb) } else { (nb, na) };
            small.iter().filter(|v| large.contains(v)).count() as u64
        })
        .collect()
}

/// Newman modularity `Q` of a community assignment on a weighted
/// undirected graph (each undirected edge listed once in `g`).
pub fn modularity(g: &WeightedEdgeList, community: &[u64]) -> f64 {
    let m: f64 = g.total_weight();
    if m == 0.0 {
        return 0.0;
    }
    let k = g.weighted_degrees();
    let mut intra: FxHashMap<u64, f64> = FxHashMap::default();
    for &(s, d, w) in g.edges() {
        if community[s as usize] == community[d as usize] {
            *intra.entry(community[s as usize]).or_default() += w;
        }
    }
    let mut ktot: FxHashMap<u64, f64> = FxHashMap::default();
    for (v, &kv) in k.iter().enumerate() {
        *ktot.entry(community[v]).or_default() += kv;
    }
    let mut q = 0.0;
    for (c, &kc) in &ktot {
        let ein = intra.get(c).copied().unwrap_or(0.0);
        q += ein / m - (kc / (2.0 * m)).powi(2);
    }
    q
}

/// Connected components (undirected view); returns the component id
/// (smallest member) per vertex.
pub fn connected_components(g: &EdgeList) -> Vec<u64> {
    let n = g.num_vertices() as usize;
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }
    for &(s, d) in g.edges() {
        let (rs, rd) = (find(&mut parent, s as usize), find(&mut parent, d as usize));
        if rs != rd {
            let (lo, hi) = (rs.min(rd), rs.max(rd));
            parent[hi] = lo;
        }
    }
    (0..n).map(|v| find(&mut parent, v) as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn pagerank_uniform_on_ring() {
        let g = gen::ring(10);
        let pr = pagerank_exact(&g, 0.85, 50);
        for &p in &pr {
            assert!((p - 0.1).abs() < 1e-9, "ring must be uniform, got {p}");
        }
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pagerank_hub_ranks_higher() {
        // Star pointing in: everyone links to 0.
        let edges = (1..10u64).map(|v| (v, 0)).collect();
        let g = EdgeList::new(10, edges);
        let pr = pagerank_exact(&g, 0.85, 50);
        assert!(pr[0] > 5.0 * pr[1], "hub {} vs leaf {}", pr[0], pr[1]);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pagerank_empty() {
        assert!(pagerank_exact(&EdgeList::new(0, vec![]), 0.85, 10).is_empty());
    }

    #[test]
    fn kcore_on_clique_plus_tail() {
        // K4 (vertices 0–3) plus a tail 3–4.
        let mut edges = gen::complete(4).into_edges();
        edges.push((3, 4));
        let g = EdgeList::new(5, edges);
        let core = kcore_exact(&g);
        assert_eq!(core[4], 1);
        for (v, &c) in core.iter().enumerate().take(4) {
            assert_eq!(c, 3, "clique member {v}");
        }
    }

    #[test]
    fn kcore_ring_is_two() {
        let core = kcore_exact(&gen::ring(6));
        assert!(core.iter().all(|&c| c == 2), "{core:?}");
    }

    #[test]
    fn triangles_on_known_graphs() {
        assert_eq!(triangles_exact(&gen::complete(4)), 4);
        assert_eq!(triangles_exact(&gen::complete(5)), 10);
        assert_eq!(triangles_exact(&gen::ring(6)), 0);
        let g = EdgeList::new(3, vec![(0, 1), (1, 2), (2, 0)]);
        assert_eq!(triangles_exact(&g), 1);
    }

    #[test]
    fn common_neighbors_on_square_with_diagonal() {
        // 0-1, 1-2, 2-3, 3-0, 0-2.
        let g = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let cn = common_neighbors_exact(&g, &[(1, 3), (0, 2), (0, 0)]);
        assert_eq!(cn[0], 2); // 1 and 3 share {0, 2}
        assert_eq!(cn[1], 2); // 0 and 2 share {1, 3}
    }

    #[test]
    fn modularity_prefers_true_communities() {
        let s = gen::sbm2(100, 8.0, 0.5, 4, 0.1, 3);
        let w = WeightedEdgeList::from_unweighted(&s.graph);
        let truth: Vec<u64> = s.labels.iter().map(|&l| l as u64).collect();
        let q_true = modularity(&w, &truth);
        let singleton: Vec<u64> = (0..100).collect();
        let q_single = modularity(&w, &singleton);
        let all_one = vec![0u64; 100];
        let q_one = modularity(&w, &all_one);
        assert!(q_true > q_single, "{q_true} vs {q_single}");
        assert!(q_true > q_one, "{q_true} vs {q_one}");
        assert!(q_true > 0.3);
    }

    #[test]
    fn modularity_empty_graph_is_zero() {
        let w = WeightedEdgeList::new(3, vec![]);
        assert_eq!(modularity(&w, &[0, 1, 2]), 0.0);
    }

    #[test]
    fn connected_components_two_islands() {
        let g = EdgeList::new(6, vec![(0, 1), (1, 2), (3, 4)]);
        let cc = connected_components(&g);
        assert_eq!(cc[0], cc[1]);
        assert_eq!(cc[1], cc[2]);
        assert_eq!(cc[3], cc[4]);
        assert_ne!(cc[0], cc[3]);
        assert_ne!(cc[5], cc[0]);
        assert_ne!(cc[5], cc[3]);
    }
}
