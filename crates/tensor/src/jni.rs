//! The JNI bridge cost shim (paper §III-C): "We transfer data between JVM
//! runtime and C++ runtime using JNI — 1) graph data is fed into PyTorch,
//! 2) PyTorch performs forward calculation and backward propagation, 3)
//! send gradients to JVM runtime."
//!
//! In this reproduction both "runtimes" are the same process, so the
//! bridge only charges the simulated copy cost of moving tensors across
//! the boundary — making the GNN cost model honest about the overhead the
//! paper actually pays.

use psgraph_sim::{CostModel, NodeClock, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::tensor::Tensor;

/// Charges JVM ↔ native copy costs and counts traffic.
#[derive(Debug)]
pub struct JniBridge {
    cost: CostModel,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

impl JniBridge {
    pub fn new(cost: CostModel) -> Self {
        JniBridge { cost, bytes_in: AtomicU64::new(0), bytes_out: AtomicU64::new(0) }
    }

    /// Feed tensors into the native runtime (step 1). Returns the charge.
    pub fn feed(&self, clock: &NodeClock, tensors: &[&Tensor]) -> SimTime {
        let bytes: u64 = tensors.iter().map(|t| t.byte_size()).sum();
        let c = self.cost.jni_cost(bytes);
        clock.advance(c);
        self.bytes_in.fetch_add(bytes, Ordering::Relaxed);
        c
    }

    /// Read gradients back to the JVM (step 3). Returns the charge.
    pub fn read_back(&self, clock: &NodeClock, tensors: &[&Tensor]) -> SimTime {
        let bytes: u64 = tensors.iter().map(|t| t.byte_size()).sum();
        let c = self.cost.jni_cost(bytes);
        clock.advance(c);
        self.bytes_out.fetch_add(bytes, Ordering::Relaxed);
        c
    }

    /// Raw byte variant for non-tensor payloads (edge lists, labels).
    pub fn transfer_bytes(&self, clock: &NodeClock, bytes: u64) -> SimTime {
        let c = self.cost.jni_cost(bytes);
        clock.advance(c);
        self.bytes_in.fetch_add(bytes, Ordering::Relaxed);
        c
    }

    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_and_read_back_charge_time_and_count() {
        let b = JniBridge::new(CostModel::default());
        let clock = NodeClock::new();
        let t = Tensor::zeros(100, 100); // 40 kB
        let c1 = b.feed(&clock, &[&t, &t]);
        assert!(c1 > SimTime::ZERO);
        assert_eq!(b.bytes_in(), 80_000);
        let c2 = b.read_back(&clock, &[&t]);
        assert_eq!(b.bytes_out(), 40_000);
        assert_eq!(clock.now(), c1 + c2);
    }

    #[test]
    fn transfer_scales_with_bytes() {
        let b = JniBridge::new(CostModel::default());
        let c1 = NodeClock::new();
        let c2 = NodeClock::new();
        b.transfer_bytes(&c1, 1 << 10);
        b.transfer_bytes(&c2, 1 << 24);
        assert!(c2.now() > c1.now());
    }

    #[test]
    fn empty_transfer_is_free() {
        let b = JniBridge::new(CostModel::default());
        let clock = NodeClock::new();
        assert_eq!(b.feed(&clock, &[]), SimTime::ZERO);
        assert_eq!(clock.now(), SimTime::ZERO);
    }
}
