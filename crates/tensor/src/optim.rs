//! Client-side optimizers over plain tensors.
//!
//! PSGraph runs its optimizers *on the servers* (psFunc — see
//! `psgraph_ps::MatrixHandle::adam_step`); these local versions exist for
//! the Euler baseline, which trains worker-side, and for unit-level
//! comparisons between the two placements.

use crate::tensor::Tensor;

/// A stateful optimizer over a fixed set of parameter slots.
pub trait Optimizer {
    /// Apply one step: `params[i] -= update(grads[i])`.
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]);
}

/// Plain SGD.
#[derive(Debug, Clone)]
pub struct Sgd {
    pub lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]) {
        assert_eq!(params.len(), grads.len());
        for (p, g) in params.iter_mut().zip(grads) {
            debug_assert_eq!(p.len(), g.len());
            for (pi, gi) in p.data_mut().iter_mut().zip(g.data()) {
                *pi -= self.lr * gi;
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    pub fn step_count(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]) {
        assert_eq!(params.len(), grads.len());
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter set changed");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (slot, (p, g)) in params.iter_mut().zip(grads).enumerate() {
            let m = &mut self.m[slot];
            let v = &mut self.v[slot];
            for (i, (pi, &gi)) in p.data_mut().iter_mut().zip(g.data()).enumerate() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * gi;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * gi * gi;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                *pi -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_grad(p: &Tensor) -> Tensor {
        // ∇ of Σ (p - 2)^2
        p.map(|x| 2.0 * (x - 2.0))
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Tensor::from_vec(1, 2, vec![10.0, -5.0]);
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            let g = quad_grad(&p);
            opt.step(&mut [&mut p], &[&g]);
        }
        assert!(p.data().iter().all(|&x| (x - 2.0).abs() < 1e-3), "{:?}", p.data());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = Tensor::from_vec(1, 2, vec![10.0, -5.0]);
        let mut opt = Adam::new(0.2);
        for _ in 0..400 {
            let g = quad_grad(&p);
            opt.step(&mut [&mut p], &[&g]);
        }
        assert_eq!(opt.step_count(), 400);
        assert!(p.data().iter().all(|&x| (x - 2.0).abs() < 0.05), "{:?}", p.data());
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        let mut p = Tensor::from_vec(1, 1, vec![0.0]);
        let g = Tensor::from_vec(1, 1, vec![100.0]);
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p], &[&g]);
        assert!((p.get(0, 0) + 0.01).abs() < 1e-4, "got {}", p.get(0, 0));
    }

    #[test]
    fn multiple_param_slots_tracked_independently() {
        let mut a = Tensor::from_vec(1, 1, vec![5.0]);
        let mut b = Tensor::from_vec(1, 2, vec![5.0, 5.0]);
        let mut opt = Adam::new(0.5);
        for _ in 0..300 {
            let ga = quad_grad(&a);
            let gb = quad_grad(&b);
            opt.step(&mut [&mut a, &mut b], &[&ga, &gb]);
        }
        assert!((a.get(0, 0) - 2.0).abs() < 0.1);
        assert!((b.get(0, 1) - 2.0).abs() < 0.1);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let mut p = Tensor::zeros(1, 1);
        let mut opt = Sgd::new(0.1);
        opt.step(&mut [&mut p], &[]);
    }
}
