//! Dense 2-D f32 tensors (row-major). Everything GraphSage needs and
//! nothing more — no strides, no views, no broadcasting beyond row-bias.

use psgraph_sim::SplitMix64;

/// A dense `rows × cols` matrix of f32 (vectors are `1 × n` or `n × 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// From row-major data.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// Seeded uniform init in `[-scale, scale)` (Xavier-ish when
    /// `scale = sqrt(6/(fan_in+fan_out))`).
    pub fn uniform(rows: usize, cols: usize, scale: f32, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let data = (0..rows * cols)
            .map(|_| (rng.next_f64() as f32 * 2.0 - 1.0) * scale)
            .collect();
        Tensor { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// In-memory footprint in bytes (JNI transfer sizing).
    pub fn byte_size(&self) -> u64 {
        (self.data.len() * 4) as u64
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self × other` (naive triple loop with slice-based inner kernel).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = out.row_mut(i);
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue; // aggregation matrices are sparse-ish
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise sum (same shape).
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Add a `1 × cols` bias row to every row.
    pub fn add_row(&self, bias: &Tensor) -> Tensor {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&bias.data) {
                *o += b;
            }
        }
        out
    }

    /// Scalar multiply.
    pub fn scale(&self, k: f32) -> Tensor {
        let data = self.data.iter().map(|v| v * k).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise product (Hadamard).
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "concat row mismatch");
        let mut out = Tensor::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Column sums as a `1 × cols` tensor (bias gradients).
    pub fn col_sum(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                z += *v;
            }
            for v in row.iter_mut() {
                *v /= z;
            }
        }
        out
    }

    /// Row-wise argmax (predictions).
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_shape() {
        let t = Tensor::zeros(2, 3);
        assert_eq!((t.rows(), t.cols(), t.len()), (2, 3, 6));
        assert!(!t.is_empty());
        assert_eq!(t.byte_size(), 24);
        let u = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
        assert_eq!(u.get(0, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_validates() {
        Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn uniform_is_seeded_and_bounded() {
        let a = Tensor::uniform(4, 4, 0.3, 7);
        let b = Tensor::uniform(4, 4, 0.3, 7);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|v| v.abs() <= 0.3));
        assert!(a.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_vec(2, 2, vec![58., 64., 139., 154.]));
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let i = Tensor::from_vec(2, 2, vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::uniform(3, 5, 1.0, 1);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 5);
    }

    #[test]
    fn add_and_bias_and_scale() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(2, 2, vec![10., 20., 30., 40.]);
        assert_eq!(a.add(&b), Tensor::from_vec(2, 2, vec![11., 22., 33., 44.]));
        let bias = Tensor::from_vec(1, 2, vec![1., -1.]);
        assert_eq!(a.add_row(&bias), Tensor::from_vec(2, 2, vec![2., 1., 4., 3.]));
        assert_eq!(a.scale(2.0), Tensor::from_vec(2, 2, vec![2., 4., 6., 8.]));
    }

    #[test]
    fn concat_and_colsum() {
        let a = Tensor::from_vec(2, 1, vec![1., 2.]);
        let b = Tensor::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let c = a.concat_cols(&b);
        assert_eq!(c, Tensor::from_vec(2, 3, vec![1., 3., 4., 2., 5., 6.]));
        assert_eq!(c.col_sum(), Tensor::from_vec(1, 3, vec![3., 8., 10.]));
        assert_eq!(c.sum(), 21.0);
    }

    #[test]
    fn softmax_rows_normalized() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 1000., 1000., 1000.]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Large values don't overflow (max-subtraction).
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let a = Tensor::from_vec(2, 3, vec![0.1, 0.9, 0.0, 5.0, -1.0, 2.0]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn hadamard_and_norm_and_map() {
        let a = Tensor::from_vec(1, 3, vec![3., 0., 4.]);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.hadamard(&a), Tensor::from_vec(1, 3, vec![9., 0., 16.]));
        assert_eq!(a.map(|v| v + 1.0), Tensor::from_vec(1, 3, vec![4., 1., 5.]));
    }
}
