//! Reverse-mode automatic differentiation over a tape of tensor ops — the
//! "Autograd mechanism" the paper relies on PyTorch for (§III-C: "PyTorch
//! performs forward calculation and backward propagation with Autograd").

use crate::tensor::Tensor;

/// Handle to a node in the computation graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    /// Leaf (input or parameter). `requires_grad` distinguishes params
    /// from inputs for [`Graph::is_param`].
    Leaf { requires_grad: bool },
    MatMul(Var, Var),
    Add(Var, Var),
    /// `x + bias_row` broadcast over rows.
    AddBias(Var, Var),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    Scale(Var, f32),
    ConcatCols(Var, Var),
    /// Mean softmax cross-entropy against integer labels; scalar output.
    SoftmaxCrossEntropy { logits: Var, labels: Vec<usize> },
    /// Mean squared error against a constant target; scalar output.
    Mse { pred: Var, target: Tensor },
}

struct Node {
    op: Op,
    value: Tensor,
    grad: Option<Tensor>,
}

/// A dynamic computation graph (fresh per forward/backward pass, like a
/// PyTorch tape).
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    pub fn new() -> Self {
        Graph::default()
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        self.nodes.push(Node { op, value, grad: None });
        Var(self.nodes.len() - 1)
    }

    /// A constant input (no gradient).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(Op::Leaf { requires_grad: false }, value)
    }

    /// A trainable parameter (gradient accumulated by `backward`).
    pub fn param(&mut self, value: Tensor) -> Var {
        self.push(Op::Leaf { requires_grad: true }, value)
    }

    /// Current value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Gradient of the last `backward` target w.r.t. `v` (if it flowed).
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Whether `v` is a trainable parameter leaf.
    pub fn is_param(&self, v: Var) -> bool {
        matches!(self.nodes[v.0].op, Op::Leaf { requires_grad: true })
    }

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), value)
    }

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        self.push(Op::Add(a, b), value)
    }

    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let value = self.value(x).add_row(self.value(bias));
        self.push(Op::AddBias(x, bias), value)
    }

    pub fn relu(&mut self, x: Var) -> Var {
        let value = self.value(x).map(|v| v.max(0.0));
        self.push(Op::Relu(x), value)
    }

    pub fn sigmoid(&mut self, x: Var) -> Var {
        let value = self.value(x).map(|v| 1.0 / (1.0 + (-v).exp()));
        self.push(Op::Sigmoid(x), value)
    }

    pub fn tanh(&mut self, x: Var) -> Var {
        let value = self.value(x).map(f32::tanh);
        self.push(Op::Tanh(x), value)
    }

    pub fn scale(&mut self, x: Var, k: f32) -> Var {
        let value = self.value(x).scale(k);
        self.push(Op::Scale(x, k), value)
    }

    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).concat_cols(self.value(b));
        self.push(Op::ConcatCols(a, b), value)
    }

    /// Mean softmax cross-entropy loss (scalar `1 × 1`).
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: &[usize]) -> Var {
        let l = self.value(logits);
        assert_eq!(l.rows(), labels.len(), "labels/batch mismatch");
        let probs = l.softmax_rows();
        let mut loss = 0.0f32;
        for (r, &y) in labels.iter().enumerate() {
            loss -= probs.get(r, y).max(1e-12).ln();
        }
        loss /= labels.len() as f32;
        self.push(
            Op::SoftmaxCrossEntropy { logits, labels: labels.to_vec() },
            Tensor::from_vec(1, 1, vec![loss]),
        )
    }

    /// Mean squared error against `target` (scalar `1 × 1`).
    pub fn mse(&mut self, pred: Var, target: Tensor) -> Var {
        let p = self.value(pred);
        assert_eq!((p.rows(), p.cols()), (target.rows(), target.cols()));
        let n = p.len() as f32;
        let loss = p
            .data()
            .iter()
            .zip(target.data())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / n;
        self.push(Op::Mse { pred, target }, Tensor::from_vec(1, 1, vec![loss]))
    }

    fn accumulate(&mut self, v: Var, g: Tensor) {
        match &mut self.nodes[v.0].grad {
            Some(existing) => *existing = existing.add(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Backpropagate from the scalar node `target`.
    pub fn backward(&mut self, target: Var) {
        assert_eq!(self.value(target).len(), 1, "backward target must be scalar");
        for n in &mut self.nodes {
            n.grad = None;
        }
        self.nodes[target.0].grad = Some(Tensor::from_vec(1, 1, vec![1.0]));

        // The tape is already topologically ordered (ops only reference
        // earlier nodes), so one reverse sweep suffices.
        for i in (0..=target.0).rev() {
            let Some(g) = self.nodes[i].grad.clone() else { continue };
            match self.nodes[i].op.clone() {
                Op::Leaf { .. } => {}
                Op::MatMul(a, b) => {
                    let da = g.matmul(&self.value(b).transpose());
                    let db = self.value(a).transpose().matmul(&g);
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Op::Add(a, b) => {
                    self.accumulate(a, g.clone());
                    self.accumulate(b, g);
                }
                Op::AddBias(x, bias) => {
                    self.accumulate(bias, g.col_sum());
                    self.accumulate(x, g);
                }
                Op::Relu(x) => {
                    let mask = self.value(x).map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    self.accumulate(x, g.hadamard(&mask));
                }
                Op::Sigmoid(x) => {
                    let s = &self.nodes[i].value;
                    let ds = s.map(|v| v * (1.0 - v));
                    self.accumulate(x, g.hadamard(&ds));
                }
                Op::Tanh(x) => {
                    let t = &self.nodes[i].value;
                    let dt = t.map(|v| 1.0 - v * v);
                    self.accumulate(x, g.hadamard(&dt));
                }
                Op::Scale(x, k) => {
                    self.accumulate(x, g.scale(k));
                }
                Op::ConcatCols(a, b) => {
                    let ca = self.value(a).cols();
                    let rows = g.rows();
                    let cb = g.cols() - ca;
                    let mut ga = Tensor::zeros(rows, ca);
                    let mut gb = Tensor::zeros(rows, cb);
                    for r in 0..rows {
                        ga.row_mut(r).copy_from_slice(&g.row(r)[..ca]);
                        gb.row_mut(r).copy_from_slice(&g.row(r)[ca..]);
                    }
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::SoftmaxCrossEntropy { logits, labels } => {
                    let scale = g.get(0, 0) / labels.len() as f32;
                    let mut dl = self.value(logits).softmax_rows();
                    for (r, &y) in labels.iter().enumerate() {
                        let v = dl.get(r, y);
                        dl.set(r, y, v - 1.0);
                    }
                    self.accumulate(logits, dl.scale(scale));
                }
                Op::Mse { pred, target } => {
                    let scale = g.get(0, 0) * 2.0 / self.value(pred).len() as f32;
                    let mut dp = self.value(pred).clone();
                    for (d, t) in dp.data_mut().iter_mut().zip(target.data()) {
                        *d -= t;
                    }
                    self.accumulate(pred, dp.scale(scale));
                }
            }
        }
    }

    /// Scalar value of a loss node.
    pub fn scalar(&self, v: Var) -> f32 {
        assert_eq!(self.value(v).len(), 1);
        self.value(v).get(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numeric gradient of `loss(build)` w.r.t. one parameter entry.
    fn numeric_grad(
        build: &dyn Fn(&mut Graph, &Tensor) -> Var,
        param: &Tensor,
        r: usize,
        c: usize,
    ) -> f32 {
        let eps = 1e-3f32;
        let mut plus = param.clone();
        plus.set(r, c, plus.get(r, c) + eps);
        let mut minus = param.clone();
        minus.set(r, c, minus.get(r, c) - eps);
        let mut g1 = Graph::new();
        let l1 = build(&mut g1, &plus);
        let mut g2 = Graph::new();
        let l2 = build(&mut g2, &minus);
        (g1.scalar(l1) - g2.scalar(l2)) / (2.0 * eps)
    }

    fn check_grads(build: impl Fn(&mut Graph, &Tensor) -> (Var, Var), param: Tensor) {
        let mut g = Graph::new();
        let (pvar, loss) = build(&mut g, &param);
        g.backward(loss);
        let analytic = g.grad(pvar).expect("param grad").clone();
        let rebuild = |gg: &mut Graph, p: &Tensor| build(gg, p).1;
        for r in 0..param.rows() {
            for c in 0..param.cols() {
                let num = numeric_grad(&rebuild, &param, r, c);
                let ana = analytic.get(r, c);
                assert!(
                    (num - ana).abs() < 1e-2 * (1.0 + num.abs().max(ana.abs())),
                    "grad mismatch at ({r},{c}): numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn grad_check_linear_mse() {
        let w = Tensor::uniform(3, 2, 0.5, 11);
        check_grads(
            |g, p| {
                let x = g.input(Tensor::uniform(4, 3, 1.0, 5));
                let w = g.param(p.clone());
                let y = g.matmul(x, w);
                let loss = g.mse(y, Tensor::uniform(4, 2, 1.0, 6));
                (w, loss)
            },
            w,
        );
    }

    #[test]
    fn grad_check_bias() {
        let b = Tensor::uniform(1, 2, 0.5, 3);
        check_grads(
            |g, p| {
                let x = g.input(Tensor::uniform(4, 2, 1.0, 9));
                let b = g.param(p.clone());
                let y = g.add_bias(x, b);
                let loss = g.mse(y, Tensor::zeros(4, 2));
                (b, loss)
            },
            b,
        );
    }

    #[test]
    fn grad_check_relu_sigmoid_tanh_chain() {
        let w = Tensor::uniform(2, 2, 0.7, 21);
        check_grads(
            |g, p| {
                let x = g.input(Tensor::uniform(3, 2, 1.0, 8));
                let w = g.param(p.clone());
                let h = g.matmul(x, w);
                let h = g.relu(h);
                let h = g.sigmoid(h);
                let h = g.tanh(h);
                let loss = g.mse(h, Tensor::zeros(3, 2));
                (w, loss)
            },
            w,
        );
    }

    #[test]
    fn grad_check_concat_and_scale() {
        let w = Tensor::uniform(2, 2, 0.5, 31);
        check_grads(
            |g, p| {
                let x = g.input(Tensor::uniform(3, 2, 1.0, 12));
                let w = g.param(p.clone());
                let a = g.matmul(x, w);
                let b = g.scale(a, 0.5);
                let cat = g.concat_cols(a, b);
                let loss = g.mse(cat, Tensor::zeros(3, 4));
                (w, loss)
            },
            w,
        );
    }

    #[test]
    fn grad_check_softmax_cross_entropy() {
        let w = Tensor::uniform(3, 4, 0.5, 41);
        let labels = vec![0usize, 3, 1, 2, 0];
        check_grads(
            |g, p| {
                let x = g.input(Tensor::uniform(5, 3, 1.0, 17));
                let w = g.param(p.clone());
                let logits = g.matmul(x, w);
                let loss = g.softmax_cross_entropy(logits, &labels);
                (w, loss)
            },
            w,
        );
    }

    #[test]
    fn grad_check_shared_parameter_two_paths() {
        // Gradient accumulates across both uses of the parameter.
        let w = Tensor::uniform(2, 2, 0.5, 51);
        check_grads(
            |g, p| {
                let x = g.input(Tensor::uniform(2, 2, 1.0, 13));
                let w = g.param(p.clone());
                let a = g.matmul(x, w);
                let b = g.matmul(a, w); // w used twice
                let loss = g.mse(b, Tensor::zeros(2, 2));
                (w, loss)
            },
            w,
        );
    }

    #[test]
    fn training_reduces_loss() {
        // One linear layer learning y = x·W* on random data.
        let wstar = Tensor::uniform(3, 2, 1.0, 1);
        let x = Tensor::uniform(16, 3, 1.0, 2);
        let y = x.matmul(&wstar);
        let mut w = Tensor::uniform(3, 2, 0.1, 3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let wv = g.param(w.clone());
            let pred = g.matmul(xv, wv);
            let loss = g.mse(pred, y.clone());
            g.backward(loss);
            let gw = g.grad(wv).unwrap();
            for (wi, gi) in w.data_mut().iter_mut().zip(gw.data()) {
                *wi -= 0.1 * gi;
            }
            last = g.scalar(loss);
            first.get_or_insert(last);
        }
        assert!(last < first.unwrap() * 0.01, "loss {first:?} → {last}");
    }

    #[test]
    fn inputs_have_no_grad_but_flow_through() {
        let mut g = Graph::new();
        let x = g.input(Tensor::uniform(2, 2, 1.0, 4));
        let w = g.param(Tensor::uniform(2, 2, 1.0, 5));
        let y = g.matmul(x, w);
        let loss = g.mse(y, Tensor::zeros(2, 2));
        g.backward(loss);
        assert!(g.grad(w).is_some());
        // Inputs also receive grads (needed for multi-layer GNNs) — they
        // are just not updated by optimizers.
        assert!(g.grad(x).is_some());
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let x = g.param(Tensor::zeros(2, 2));
        g.backward(x);
    }
}
