//! Neural-network layers over the autograd graph.

use crate::autograd::{Graph, Var};
use crate::tensor::Tensor;

/// A fully-connected layer `y = x·W + b` with the weights held as plain
/// tensors so they can be synced to/from the parameter server between
/// steps (PSGraph pulls `W^k` from PS, builds the tape, and pushes the
/// gradients back — paper Fig. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    pub weight: Tensor,
    pub bias: Tensor,
}

impl Linear {
    /// Xavier-uniform initialization.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let scale = (6.0 / (in_dim + out_dim) as f32).sqrt();
        Linear {
            weight: Tensor::uniform(in_dim, out_dim, scale, seed),
            bias: Tensor::zeros(1, out_dim),
        }
    }

    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Register parameters on the tape and apply the layer. Returns
    /// `(output, weight var, bias var)` so callers can read the gradients
    /// after `backward`.
    pub fn forward(&self, g: &mut Graph, x: Var) -> (Var, Var, Var) {
        let w = g.param(self.weight.clone());
        let b = g.param(self.bias.clone());
        let xw = g.matmul(x, w);
        let y = g.add_bias(xw, b);
        (y, w, b)
    }

    /// Flatten parameters into one row-major vector (PS storage layout:
    /// weight rows then bias).
    pub fn to_flat(&self) -> Vec<f32> {
        let mut v = self.weight.data().to_vec();
        v.extend_from_slice(self.bias.data());
        v
    }

    /// Inverse of [`Linear::to_flat`].
    pub fn from_flat(in_dim: usize, out_dim: usize, flat: &[f32]) -> Self {
        assert_eq!(flat.len(), in_dim * out_dim + out_dim, "flat size mismatch");
        Linear {
            weight: Tensor::from_vec(in_dim, out_dim, flat[..in_dim * out_dim].to_vec()),
            bias: Tensor::from_vec(1, out_dim, flat[in_dim * out_dim..].to_vec()),
        }
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

/// Classification accuracy of `logits` against integer labels.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    assert_eq!(logits.rows(), labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let preds = logits.argmax_rows();
    let correct = preds.iter().zip(labels).filter(|(p, y)| p == y).count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes_and_forward() {
        let layer = Linear::new(3, 2, 7);
        assert_eq!((layer.in_dim(), layer.out_dim()), (3, 2));
        assert_eq!(layer.param_count(), 8);
        let mut g = Graph::new();
        let x = g.input(Tensor::uniform(4, 3, 1.0, 1));
        let (y, _, _) = layer.forward(&mut g, x);
        assert_eq!((g.value(y).rows(), g.value(y).cols()), (4, 2));
    }

    #[test]
    fn flat_roundtrip() {
        let layer = Linear::new(5, 3, 9);
        let flat = layer.to_flat();
        assert_eq!(flat.len(), 18);
        let back = Linear::from_flat(5, 3, &flat);
        assert_eq!(back, layer);
    }

    #[test]
    #[should_panic(expected = "flat size mismatch")]
    fn from_flat_validates() {
        Linear::from_flat(2, 2, &[0.0; 5]);
    }

    #[test]
    fn gradients_flow_through_layer() {
        let layer = Linear::new(3, 2, 11);
        let mut g = Graph::new();
        let x = g.input(Tensor::uniform(4, 3, 1.0, 2));
        let (y, wv, bv) = layer.forward(&mut g, x);
        let loss = g.mse(y, Tensor::zeros(4, 2));
        g.backward(loss);
        assert!(g.grad(wv).unwrap().norm() > 0.0);
        assert_eq!(g.grad(bv).unwrap().cols(), 2);
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        assert!((accuracy(&logits, &[0, 1, 0]) - 1.0).abs() < 1e-12);
        assert!((accuracy(&logits, &[1, 1, 0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&Tensor::zeros(0, 2), &[]), 0.0);
    }

    #[test]
    fn two_layer_net_learns_xor() {
        // Classic sanity check that the whole stack trains.
        let x = Tensor::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let labels = vec![0usize, 1, 1, 0];
        let mut l1 = Linear::new(2, 8, 1);
        let mut l2 = Linear::new(8, 2, 2);
        let mut final_acc = 0.0;
        for _ in 0..800 {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let (h, w1, b1) = l1.forward(&mut g, xv);
            let h = g.relu(h);
            let (logits, w2, b2) = l2.forward(&mut g, h);
            let loss = g.softmax_cross_entropy(logits, &labels);
            g.backward(loss);
            let lr = 0.5;
            for (p, gv) in [
                (&mut l1.weight, w1),
                (&mut l1.bias, b1),
                (&mut l2.weight, w2),
                (&mut l2.bias, b2),
            ] {
                let grad = g.grad(gv).unwrap();
                for (pi, gi) in p.data_mut().iter_mut().zip(grad.data()) {
                    *pi -= lr * gi;
                }
            }
            final_acc = accuracy(g.value(logits), &labels);
        }
        assert!(final_acc > 0.99, "xor accuracy {final_acc}");
    }
}
