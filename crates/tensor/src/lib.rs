//! A small tensor / autograd / neural-network library — the stand-in for
//! the PyTorch runtime that PSGraph embeds via JNI (paper §III-C, §IV-E).
//!
//! Scope is exactly what GraphSage training needs: dense f32 matrices,
//! reverse-mode automatic differentiation over a tape ([`autograd::Graph`]),
//! linear layers with nonlinear activations, softmax cross-entropy loss,
//! and client-side optimizers for the Euler baseline (PSGraph itself runs
//! its optimizers server-side as psFuncs — see `psgraph_ps::MatrixHandle`).
//! The [`jni::JniBridge`] charges the JVM ↔ native copy costs the paper
//! pays when feeding graph data into PyTorch and reading gradients back.
//!
//! Gradients are verified against numeric differentiation in the test
//! suite (`autograd::tests::grad_check_*`).

pub mod autograd;
pub mod jni;
pub mod nn;
pub mod optim;
pub mod tensor;

pub use autograd::{Graph, Var};
pub use jni::JniBridge;
pub use nn::Linear;
pub use optim::{Adam, Optimizer, Sgd};
pub use tensor::Tensor;
