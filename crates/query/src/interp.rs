//! The single-node reference interpreter: executes any plan against
//! full truth arrays. This is the bit-exact oracle — every distributed
//! execution (any shard count, any pushdown decision, any pool size)
//! must reproduce its output exactly.

use crate::exec::{
    self, dot_cols, pred_keep, scalar_score, sort_ranked, ExecError, VertexView,
};
use crate::plan::{DotAssoc, ExpandMode, Plan, Scorer, Source, Stage};

/// Full truth arrays for a snapshot. Any object may be absent, matching
/// a snapshot that did not include it.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphTruth {
    pub num_vertices: u64,
    pub ranks: Option<Vec<f64>>,
    pub communities: Option<Vec<u64>>,
    pub adjacency: Option<Vec<Vec<u64>>>,
    pub embeddings: Option<Vec<Vec<f32>>>,
}

impl GraphTruth {
    /// A truth with no objects.
    pub fn new(num_vertices: u64) -> Self {
        GraphTruth {
            num_vertices,
            ranks: None,
            communities: None,
            adjacency: None,
            embeddings: None,
        }
    }
}

impl VertexView for GraphTruth {
    fn rank(&self, v: u64) -> Option<f64> {
        self.ranks.as_ref().and_then(|r| r.get(v as usize)).copied()
    }
    fn community(&self, v: u64) -> Option<u64> {
        self.communities.as_ref().and_then(|c| c.get(v as usize)).copied()
    }
    fn degree(&self, v: u64) -> Option<usize> {
        self.adjacency.as_ref().and_then(|a| a.get(v as usize)).map(|n| n.len())
    }
    fn embed_row(&self, v: u64) -> Option<&[f32]> {
        self.embeddings.as_ref().and_then(|e| e.get(v as usize)).map(|r| r.as_slice())
    }
}

/// What a plan evaluates to.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOutput {
    /// Ascending vertex ids (`Collect` terminal).
    Vertices(Vec<u64>),
    /// `(vertex, score)` in canonical ranked order (`TopK` terminal).
    Ranked(Vec<(u64, f64)>),
}

/// Executes plans against a [`GraphTruth`]. `num_shards` fixes the
/// `DotAssoc::ColShards` association so seed-plan scores carry the same
/// bits as the cluster being verified.
pub struct Interpreter<'a> {
    truth: &'a GraphTruth,
    num_shards: usize,
}

impl<'a> Interpreter<'a> {
    pub fn new(truth: &'a GraphTruth, num_shards: usize) -> Self {
        Interpreter { truth, num_shards: num_shards.max(1) }
    }

    /// Run a plan to completion.
    pub fn run(&self, plan: &Plan) -> Result<PlanOutput, ExecError> {
        plan.validate().map_err(|e| ExecError(e.to_string()))?;
        let n = self.truth.num_vertices;
        if let Some(a) = plan.anchor() {
            if a >= n {
                return Err(ExecError(format!("vertex {a} out of range ({n} vertices)")));
            }
        }
        match plan.source {
            // `All` plans are *defined* by the pushed-prefix kernel over
            // the full range; distributed execution reproduces this by
            // splitting the range across shards.
            Source::All => {
                let q_row = match plan.dot_vertex() {
                    Some(qv) => Some(
                        self.truth
                            .embed_row(qv)
                            .ok_or_else(|| ExecError("shard serves no embedding rows".into()))?,
                    ),
                    None => None,
                };
                let pp = exec::run_pushed(self.truth, 0, n, &plan.stages, q_row)?;
                Ok(match plan.stages.last() {
                    Some(Stage::Collect { .. }) => {
                        PlanOutput::Vertices(pp.rows.into_iter().map(|(v, _)| v).collect())
                    }
                    _ => PlanOutput::Ranked(pp.rows),
                })
            }
            Source::Seed(seed) => self.run_seeded(plan, seed),
        }
    }

    /// Operator loop for seed plans, mirroring the frontend suffix
    /// executor stage for stage.
    fn run_seeded(&self, plan: &Plan, seed: u64) -> Result<PlanOutput, ExecError> {
        let mut ids: Vec<u64> = vec![seed];
        let mut scores: Option<Vec<f64>> = None;
        for st in &plan.stages {
            match st {
                Stage::Filter(p) => {
                    let keep: Vec<bool> = ids
                        .iter()
                        .map(|&v| pred_keep(self.truth, v, *p))
                        .collect::<Result<_, _>>()?;
                    let mut it = keep.iter();
                    ids.retain(|_| *it.next().unwrap());
                    if let Some(sc) = &mut scores {
                        let mut it = keep.iter();
                        sc.retain(|_| *it.next().unwrap());
                    }
                }
                Stage::Expand { hops, cap, mode } => {
                    let adj = self
                        .truth
                        .adjacency
                        .as_ref()
                        .ok_or_else(|| ExecError("shard serves no adjacency".into()))?;
                    let mut fetch = |vs: &[u64]| -> Result<Vec<Vec<u64>>, ExecError> {
                        vs.iter()
                            .map(|&v| {
                                adj.get(v as usize).cloned().ok_or_else(|| {
                                    ExecError(format!("vertex {v} out of range"))
                                })
                            })
                            .collect()
                    };
                    ids = match mode {
                        ExpandMode::Frontier => exec::expand_frontier(&ids, *hops, *cap, &mut fetch)?,
                        ExpandMode::Union => exec::expand_union(&ids, *hops, *cap, &mut fetch)?,
                    };
                    scores = None;
                }
                Stage::Score(Scorer::Dot(qv)) => {
                    debug_assert_eq!(plan.dot_assoc(), DotAssoc::ColShards);
                    ids.retain(|&v| v != *qv);
                    // An empty candidate set issues no scoring RPCs in the
                    // distributed executor, so it raises no missing-object
                    // error here either.
                    if ids.is_empty() {
                        scores = Some(Vec::new());
                        continue;
                    }
                    let q = self
                        .truth
                        .embed_row(*qv)
                        .ok_or_else(|| ExecError("shard serves no embeddings".into()))?;
                    let mut sc = Vec::with_capacity(ids.len());
                    for &v in &ids {
                        let row = self
                            .truth
                            .embed_row(v)
                            .ok_or_else(|| ExecError("shard serves no embeddings".into()))?;
                        if row.len() != q.len() {
                            return Err(ExecError(format!(
                                "query row has {} dims, shard stores {}",
                                q.len(),
                                row.len()
                            )));
                        }
                        sc.push(dot_cols(q, row, self.num_shards));
                    }
                    scores = Some(sc);
                }
                Stage::Score(s) => {
                    let mut sc = Vec::with_capacity(ids.len());
                    for &v in &ids {
                        sc.push(scalar_score(self.truth, v, *s)?);
                    }
                    scores = Some(sc);
                }
                Stage::TopK(k) => {
                    let sc = scores.take().unwrap_or_default();
                    let mut ranked: Vec<(u64, f64)> = ids.iter().copied().zip(sc).collect();
                    sort_ranked(&mut ranked);
                    ranked.truncate(*k);
                    return Ok(PlanOutput::Ranked(ranked));
                }
                Stage::Collect { cap } => {
                    ids.truncate(*cap);
                    return Ok(PlanOutput::Vertices(ids));
                }
            }
        }
        Err(ExecError("plan missing terminal stage".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Pred;

    fn truth() -> GraphTruth {
        GraphTruth {
            num_vertices: 6,
            ranks: Some(vec![0.5, 0.4, 0.3, 0.2, 0.1, 0.6]),
            communities: Some(vec![1, 1, 2, 2, 1, 2]),
            adjacency: Some(vec![vec![1, 2], vec![3], vec![], vec![4, 5], vec![0], vec![]]),
            embeddings: Some((0..6).map(|v| vec![v as f32 * 0.25, 1.0]).collect()),
        }
    }

    #[test]
    fn khop_matches_hand_bfs() {
        let t = truth();
        let it = Interpreter::new(&t, 2);
        assert_eq!(it.run(&Plan::khop(0, 2)).unwrap(), PlanOutput::Vertices(vec![1, 2, 3]));
        assert_eq!(
            it.run(&Plan::khop(0, 4)).unwrap(),
            PlanOutput::Vertices(vec![1, 2, 3, 4, 5])
        );
        assert_eq!(it.run(&Plan::khop(2, 3)).unwrap(), PlanOutput::Vertices(vec![]));
    }

    #[test]
    fn topk_all_matches_hand_scores() {
        let t = truth();
        // q = row 5 = [1.25, 1.0]; score(v) = 1.25·(0.25v) + 1.0.
        let out = Interpreter::new(&t, 3).run(&Plan::topk_all(5, 2)).unwrap();
        match out {
            PlanOutput::Ranked(r) => {
                assert_eq!(r.len(), 2);
                assert_eq!(r[0].0, 4);
                assert_eq!(r[1].0, 3);
                assert_eq!(r[0].1, 1.25 * 1.0 + 1.0 * 1.0);
            }
            other => panic!("expected ranked, got {other:?}"),
        }
    }

    #[test]
    fn compound_filter_expand_score_topk() {
        let t = truth();
        let it = Interpreter::new(&t, 2);
        let plan = Plan {
            source: Source::Seed(0),
            stages: vec![
                Stage::Filter(Pred::DegreeAtLeast(1)),
                Stage::Expand { hops: 2, cap: 64, mode: ExpandMode::Frontier },
                Stage::Filter(Pred::CommunityEq(2)),
                Stage::Score(Scorer::Rank),
                Stage::TopK(8),
            ],
        };
        // 2-hop from 0 = {1,2,3}; community 2 keeps {2,3}; ranked by rank.
        assert_eq!(
            it.run(&plan).unwrap(),
            PlanOutput::Ranked(vec![(2, 0.3), (3, 0.2)])
        );
        // A filter that drops the seed empties the whole plan.
        let dead = Plan {
            source: Source::Seed(2),
            stages: vec![
                Stage::Filter(Pred::DegreeAtLeast(1)),
                Stage::Expand { hops: 2, cap: 64, mode: ExpandMode::Frontier },
                Stage::Collect { cap: 64 },
            ],
        };
        assert_eq!(it.run(&dead).unwrap(), PlanOutput::Vertices(vec![]));
    }

    #[test]
    fn errors_on_missing_objects_and_bad_anchors() {
        let t = truth();
        let it = Interpreter::new(&t, 2);
        assert!(it.run(&Plan::khop(99, 2)).is_err(), "anchor out of range");

        let bare = GraphTruth::new(6);
        let it2 = Interpreter::new(&bare, 2);
        assert!(it2.run(&Plan::khop(0, 2)).is_err(), "no adjacency");
        assert!(it2.run(&Plan::topk_all(0, 2)).is_err(), "no embeddings");
        let need_ranks = Plan {
            source: Source::All,
            stages: vec![Stage::Filter(Pred::RankAtLeast(0.0)), Stage::Collect { cap: 8 }],
        };
        assert!(it2.run(&need_ranks).is_err(), "no ranks");
    }
}
