//! Declarative compound query plans over a partitioned graph snapshot.
//!
//! The serving tier used to hardcode its plan shapes as enum variants
//! (rank lookup, k-hop, top-k, ...) — every new workload meant another
//! variant threaded through shard, frontend, and loadgen. This crate
//! replaces that with a small composable IR in the GraphX tradition: a
//! [`plan::Plan`] is a [`plan::Source`] (one seed vertex, or the whole
//! vertex set) followed by `Filter → Expand → Score → TopK / Collect`
//! stages over vertex sets.
//!
//! Three consumers share one semantic definition (the kernels in
//! [`exec`]):
//!
//! * the **single-node reference interpreter** ([`interp::Interpreter`])
//!   runs any plan against full truth arrays — the bit-exact oracle every
//!   distributed execution is verified against;
//! * the **cost-based planner** ([`cost::decide`]) estimates per-stage
//!   cardinalities from shard statistics and picks the plan prefix that
//!   executes shard-side (GraphScale-style pushdown: evaluate where the
//!   partitioned state lives instead of hauling rows to a coordinator);
//! * the **distributed executor** in `psgraph-serve` runs the pushed
//!   prefix on every shard via [`exec::run_pushed`] and merges partials
//!   at the frontend in canonical shard order, preserving the
//!   deterministic-reduction rule — results are bit-identical at any
//!   pool size *and any pushdown decision*.
//!
//! Why pushdown cannot change bits: the float association of every
//! `Score` stage is fixed statically by the plan's source (`All` →
//! full-row f64 accumulation in column order; `Seed` candidate sets →
//! per-column-shard partial sums added in shard order), per-shard
//! `Filter`/`Collect` partials concatenate in shard order — which *is*
//! vertex-id order under range partitioning — and per-shard `TopK`
//! partials are exact under the total order (score desc, id asc) the
//! final merge re-sorts by. The planner only moves work, never math.

pub mod cost;
pub mod exec;
pub mod interp;
pub mod part;
pub mod plan;

pub use cost::{decide, PushDecision, PushPolicy, ShardStats, TierStats};
pub use exec::{ExecError, PushedPartial, VertexView};
pub use interp::{GraphTruth, Interpreter, PlanOutput};
pub use plan::{ExpandMode, Plan, PlanError, Pred, Scorer, Source, Stage};
