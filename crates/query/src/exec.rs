//! Shared execution kernels: one semantic definition of every stage,
//! used by the single-node interpreter, the shard-side pushed-prefix
//! evaluator, and the frontend suffix executor.

use std::collections::HashSet;
use std::fmt;

use crate::part::col_range;
use crate::plan::{Pred, Scorer, Stage};

/// Execution failed (missing attribute, out-of-range vertex, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError(pub String);

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ExecError {}

fn missing(what: &str) -> ExecError {
    ExecError(format!("shard serves no {what}"))
}

/// Read access to per-vertex attributes. Implemented by truth arrays
/// (the interpreter) and by `ShardData` over its local range (the
/// pushed-prefix evaluator). `None` means the backing object is absent.
pub trait VertexView {
    fn rank(&self, v: u64) -> Option<f64>;
    fn community(&self, v: u64) -> Option<u64>;
    fn degree(&self, v: u64) -> Option<usize>;
    fn embed_row(&self, v: u64) -> Option<&[f32]>;
}

/// Evaluate one predicate against one vertex.
pub fn pred_keep<V: VertexView + ?Sized>(view: &V, v: u64, p: Pred) -> Result<bool, ExecError> {
    match p {
        Pred::RankAtLeast(t) => view.rank(v).map(|r| r >= t).ok_or_else(|| missing("ranks")),
        Pred::RankBelow(t) => view.rank(v).map(|r| r < t).ok_or_else(|| missing("ranks")),
        Pred::CommunityEq(c) => {
            view.community(v).map(|x| x == c).ok_or_else(|| missing("communities"))
        }
        Pred::CommunityNe(c) => {
            view.community(v).map(|x| x != c).ok_or_else(|| missing("communities"))
        }
        Pred::DegreeAtLeast(d) => {
            view.degree(v).map(|x| x as u64 >= d).ok_or_else(|| missing("adjacency"))
        }
        Pred::DegreeBelow(d) => {
            view.degree(v).map(|x| (x as u64) < d).ok_or_else(|| missing("adjacency"))
        }
    }
}

/// Evaluate a scalar scorer (`Rank`/`Degree`) against one vertex.
pub fn scalar_score<V: VertexView + ?Sized>(
    view: &V,
    v: u64,
    s: Scorer,
) -> Result<f64, ExecError> {
    match s {
        Scorer::Rank => view.rank(v).ok_or_else(|| missing("ranks")),
        Scorer::Degree => view.degree(v).map(|d| d as f64).ok_or_else(|| missing("adjacency")),
        Scorer::Dot(_) => Err(ExecError("Dot is not a scalar scorer".into())),
    }
}

/// Full-row dot product: one f64 fold in column order. This is the
/// `DotAssoc::FullRow` association (identical to the shard-local
/// `local_topk` fold).
pub fn dot_full(q: &[f32], row: &[f32]) -> f64 {
    q.iter().zip(row).map(|(a, b)| *a as f64 * *b as f64).sum()
}

/// Column-sharded dot product: per-column-shard partial sums added in
/// shard order — the `DotAssoc::ColShards` association, matching the
/// distributed scatter to column shards bit for bit. (A partial over an
/// empty column slice is `+0.0`, and `x + 0.0` preserves `x`'s bits for
/// every finite `x` the fold can produce, so shards with zero columns
/// may be included or skipped freely.)
pub fn dot_cols(q: &[f32], row: &[f32], num_shards: usize) -> f64 {
    let mut total = 0.0f64;
    for s in 0..num_shards {
        let (lo, hi) = col_range(s, q.len(), num_shards);
        let mut partial = 0.0f64;
        for j in lo..hi {
            partial += q[j] as f64 * row[j] as f64;
        }
        total += partial;
    }
    total
}

/// Canonical ranked order: score descending, vertex id ascending on ties.
pub fn sort_ranked(rows: &mut [(u64, f64)]) {
    rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
}

/// `Expand` in `Frontier` mode: visited-set BFS from `start`. Each hop
/// fetches the neighbor lists of the current frontier (one call per
/// hop), keeps unvisited targets sorted/deduplicated/truncated to
/// `cap`, and the result is every visited vertex minus the start set,
/// ascending. Generic over the fetch so the interpreter passes an
/// adjacency lookup and the frontend passes an RPC scatter.
pub fn expand_frontier<E>(
    start: &[u64],
    hops: u32,
    cap: usize,
    fetch: &mut dyn FnMut(&[u64]) -> Result<Vec<Vec<u64>>, E>,
) -> Result<Vec<u64>, E> {
    let mut visited: HashSet<u64> = start.iter().copied().collect();
    let mut frontier: Vec<u64> = start.to_vec();
    for _ in 0..hops {
        if frontier.is_empty() {
            break;
        }
        let lists = fetch(&frontier)?;
        let mut next: Vec<u64> = lists
            .into_iter()
            .flatten()
            .filter(|t| !visited.contains(t))
            .collect();
        next.sort_unstable();
        next.dedup();
        next.truncate(cap);
        visited.extend(next.iter().copied());
        frontier = next;
    }
    let mut result: Vec<u64> = visited.into_iter().filter(|v| !start.contains(v)).collect();
    result.sort_unstable();
    Ok(result)
}

/// `Expand` in `Union` mode: accumulate every per-hop neighbor list
/// (revisits allowed), then sort, deduplicate, drop the start set, and
/// truncate to `cap`. The next frontier is the sorted/deduplicated flat
/// list, so the *set* reached per hop matches a raw traversal exactly.
pub fn expand_union<E>(
    start: &[u64],
    hops: u32,
    cap: usize,
    fetch: &mut dyn FnMut(&[u64]) -> Result<Vec<Vec<u64>>, E>,
) -> Result<Vec<u64>, E> {
    let mut acc: Vec<u64> = Vec::new();
    let mut frontier: Vec<u64> = start.to_vec();
    frontier.sort_unstable();
    frontier.dedup();
    for _ in 0..hops {
        if frontier.is_empty() {
            break;
        }
        let lists = fetch(&frontier)?;
        let flat: Vec<u64> = lists.into_iter().flatten().collect();
        acc.extend(flat.iter().copied());
        let mut next = flat;
        next.sort_unstable();
        next.dedup();
        frontier = next;
    }
    acc.sort_unstable();
    acc.dedup();
    acc.retain(|v| !start.contains(v));
    acc.truncate(cap);
    Ok(acc)
}

/// Result of evaluating a pushed plan prefix over one vertex range.
#[derive(Debug, Clone, PartialEq)]
pub struct PushedPartial {
    /// Surviving `(vertex, score)` rows. Unscored rows carry `0.0` and
    /// stay in ascending id order; after a `TopK` they are in canonical
    /// ranked order instead.
    pub rows: Vec<(u64, f64)>,
    /// Whether a `Score` stage ran (and survived — `Collect` drops it).
    pub scored: bool,
    /// Rows pruned by each stage, index-aligned with `stages`.
    pub pruned: Vec<u64>,
}

/// Evaluate a pushable plan prefix over the vertex range `[lo, hi)`.
///
/// This single function defines the semantics of `All`-source plans:
/// the interpreter runs it over `[0, n)` with full truth arrays, and
/// each shard runs it over its own range — because every stage is
/// elementwise (`Filter`, `Score`), exact under the ranked total order
/// (`TopK`), or an ascending-order prefix (`Collect`), concatenating
/// per-shard results in shard order and re-applying the terminal at the
/// frontend reproduces the single-range result bit for bit.
///
/// `Expand` is not pushable (it leaves the shard's range) and `Seed`
/// sources resolve at the frontend, so `stages` here never contains
/// `Expand` — it is rejected if it does.
pub fn run_pushed<V: VertexView + ?Sized>(
    view: &V,
    lo: u64,
    hi: u64,
    stages: &[Stage],
    q_row: Option<&[f32]>,
) -> Result<PushedPartial, ExecError> {
    let mut rows: Vec<(u64, f64)> = (lo..hi).map(|v| (v, 0.0)).collect();
    let mut scored = false;
    let mut pruned = Vec::with_capacity(stages.len());
    for st in stages {
        let before = rows.len();
        match st {
            Stage::Filter(p) => {
                let mut err = None;
                rows.retain(|&(v, _)| match pred_keep(view, v, *p) {
                    Ok(keep) => keep,
                    Err(e) => {
                        err = Some(e);
                        false
                    }
                });
                if let Some(e) = err {
                    return Err(e);
                }
            }
            Stage::Score(Scorer::Dot(qv)) => {
                let q = q_row.ok_or_else(|| ExecError("dot scoring needs a query row".into()))?;
                rows.retain(|&(v, _)| v != *qv);
                for r in rows.iter_mut() {
                    let row = view.embed_row(r.0).ok_or_else(|| missing("embedding rows"))?;
                    if row.len() != q.len() {
                        return Err(ExecError(format!(
                            "query row has {} dims, shard stores {}",
                            q.len(),
                            row.len()
                        )));
                    }
                    r.1 = dot_full(q, row);
                }
                scored = true;
            }
            Stage::Score(s) => {
                for r in rows.iter_mut() {
                    r.1 = scalar_score(view, r.0, *s)?;
                }
                scored = true;
            }
            Stage::TopK(k) => {
                sort_ranked(&mut rows);
                rows.truncate(*k);
            }
            Stage::Collect { cap } => {
                rows.truncate(*cap);
                scored = false;
            }
            Stage::Expand { .. } => return Err(ExecError("Expand is not pushable".into())),
        }
        pruned.push((before - rows.len()) as u64);
    }
    Ok(PushedPartial { rows, scored, pruned })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ExpandMode, Pred};

    struct Arrays {
        ranks: Vec<f64>,
        comms: Vec<u64>,
        adj: Vec<Vec<u64>>,
        embed: Vec<Vec<f32>>,
    }

    impl VertexView for Arrays {
        fn rank(&self, v: u64) -> Option<f64> {
            self.ranks.get(v as usize).copied()
        }
        fn community(&self, v: u64) -> Option<u64> {
            self.comms.get(v as usize).copied()
        }
        fn degree(&self, v: u64) -> Option<usize> {
            self.adj.get(v as usize).map(|n| n.len())
        }
        fn embed_row(&self, v: u64) -> Option<&[f32]> {
            self.embed.get(v as usize).map(|r| r.as_slice())
        }
    }

    fn arrays() -> Arrays {
        Arrays {
            ranks: vec![0.5, 0.4, 0.3, 0.2, 0.1, 0.6],
            comms: vec![1, 1, 2, 2, 1, 2],
            adj: vec![vec![1, 2], vec![3], vec![], vec![4, 5], vec![0], vec![]],
            embed: (0..6).map(|v| vec![v as f32, 1.0]).collect(),
        }
    }

    #[test]
    fn dot_cols_matches_dot_full_bits() {
        // The +0.0 partial argument: splitting the fold across column
        // shards must not change bits for these grid values.
        let q: Vec<f32> = vec![0.25, -0.5, 0.75, -1.0, 0.0];
        let row: Vec<f32> = vec![1.25, 0.5, -0.25, 2.0, 3.5];
        let full = dot_full(&q, &row);
        for shards in 1..=8 {
            assert_eq!(dot_cols(&q, &row, shards).to_bits(), full.to_bits(), "shards={shards}");
        }
    }

    #[test]
    fn expand_frontier_is_bfs_minus_start() {
        let a = arrays();
        let mut fetch = |vs: &[u64]| -> Result<Vec<Vec<u64>>, ExecError> {
            Ok(vs.iter().map(|&v| a.adj[v as usize].clone()).collect())
        };
        assert_eq!(expand_frontier(&[0], 1, 100, &mut fetch).unwrap(), vec![1, 2]);
        assert_eq!(expand_frontier(&[0], 2, 100, &mut fetch).unwrap(), vec![1, 2, 3]);
        assert_eq!(expand_frontier(&[0], 3, 100, &mut fetch).unwrap(), vec![1, 2, 3, 4, 5]);
        // Frontier cap truncates per hop after sort+dedup.
        assert_eq!(expand_frontier(&[0], 1, 1, &mut fetch).unwrap(), vec![1]);
        // Empty start expands to nothing.
        assert_eq!(expand_frontier(&[], 3, 100, &mut fetch).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn expand_union_accumulates_revisits() {
        let a = arrays();
        let mut fetch = |vs: &[u64]| -> Result<Vec<Vec<u64>>, ExecError> {
            Ok(vs.iter().map(|&v| a.adj[v as usize].clone()).collect())
        };
        // hop1 from 3 = {4,5}; hop2 adds N(4)∪N(5) = {0}; start dropped.
        assert_eq!(expand_union(&[3], 2, 100, &mut fetch).unwrap(), vec![0, 4, 5]);
        // Cap applies after accumulation (global, not per hop).
        assert_eq!(expand_union(&[3], 2, 2, &mut fetch).unwrap(), vec![0, 4]);
    }

    #[test]
    fn run_pushed_splits_bit_exactly_across_ranges() {
        let a = arrays();
        let q = a.embed[5].clone();
        let plans: Vec<Vec<Stage>> = vec![
            vec![Stage::Filter(Pred::CommunityEq(1)), Stage::Collect { cap: 100 }],
            vec![Stage::Filter(Pred::RankAtLeast(0.3)), Stage::Score(Scorer::Rank), Stage::TopK(3)],
            vec![Stage::Filter(Pred::DegreeAtLeast(1)), Stage::Score(Scorer::Degree), Stage::TopK(2)],
            vec![Stage::Score(Scorer::Dot(5)), Stage::TopK(4)],
        ];
        for stages in &plans {
            let whole = run_pushed(&a, 0, 6, stages, Some(&q)).unwrap();
            // Split into two ranges, concatenate in range order, re-apply
            // the terminal: must match the single-range run bit for bit.
            let left = run_pushed(&a, 0, 3, stages, Some(&q)).unwrap();
            let right = run_pushed(&a, 3, 6, stages, Some(&q)).unwrap();
            let mut merged: Vec<(u64, f64)> = [left.rows, right.rows].concat();
            match stages.last().unwrap() {
                Stage::TopK(k) => {
                    sort_ranked(&mut merged);
                    merged.truncate(*k);
                }
                Stage::Collect { cap } => merged.truncate(*cap),
                _ => unreachable!(),
            }
            assert_eq!(merged.len(), whole.rows.len(), "stages={stages:?}");
            for (m, w) in merged.iter().zip(&whole.rows) {
                assert_eq!(m.0, w.0, "stages={stages:?}");
                assert_eq!(m.1.to_bits(), w.1.to_bits(), "stages={stages:?}");
            }
        }
    }

    #[test]
    fn run_pushed_reports_pruning_and_rejects_expand() {
        let a = arrays();
        let stages = vec![
            Stage::Filter(Pred::CommunityEq(2)),
            Stage::Score(Scorer::Rank),
            Stage::TopK(2),
        ];
        let pp = run_pushed(&a, 0, 6, &stages, None).unwrap();
        assert_eq!(pp.pruned, vec![3, 0, 1]);
        assert_eq!(pp.rows, vec![(5, 0.6), (2, 0.3)]);
        assert!(pp.scored);

        let bad = vec![
            Stage::Expand { hops: 1, cap: 8, mode: ExpandMode::Frontier },
            Stage::Collect { cap: 8 },
        ];
        assert!(run_pushed(&a, 0, 6, &bad, None).is_err());
        // Missing attribute surfaces as an error, not a silent skip.
        let no_ranks = Arrays { ranks: vec![], ..arrays() };
        let need_ranks = vec![Stage::Filter(Pred::RankAtLeast(0.0)), Stage::Collect { cap: 8 }];
        assert!(run_pushed(&no_ranks, 0, 6, &need_ranks, None).is_err());
    }
}
