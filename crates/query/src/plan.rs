//! The plan IR: a source plus composable stages over vertex sets.
//!
//! A plan evaluates a *working set*. `Source` seeds it (one vertex, or
//! the whole vertex range); each stage transforms it:
//!
//! ```text
//! plan     := source stage* terminal
//! source   := Seed(v) | All
//! stage    := Filter(pred) | Expand(hops, cap, mode) | Score(scorer)
//! terminal := TopK(k) | Collect(cap)
//! pred     := rank ≥ t | rank < t | community = c | community ≠ c
//!           | degree ≥ d | degree < d
//! scorer   := Dot(v) | Rank | Degree
//! ```
//!
//! Well-formedness ([`Plan::validate`]): the last stage must be a
//! terminal and terminals appear only last; `Expand` requires a `Seed`
//! source (expanding "all vertices" is unbounded) and may not follow
//! `Score` (scores would be silently dropped); at most one `Score`;
//! `TopK` requires a preceding `Score`; a scored plan must end in
//! `TopK` (ending in `Collect` would drop the scores it paid for).
//!
//! Float determinism is part of the IR contract: the association of a
//! `Score(Dot)` accumulation is fixed *statically* by the source —
//! `All` plans score full rows shard-side in column order
//! ([`crate::exec::dot_full`]); `Seed` plans score candidate sets as
//! per-column-shard partial sums added in shard order
//! ([`crate::exec::dot_cols`]). The pushdown decision can therefore
//! never change result bits, only where the same fold runs.

use std::fmt;

/// Per-hop frontier cap for `Expand` in frontier mode (compiled k-hop).
pub const KHOP_FRONTIER_CAP: usize = 4096;

/// Candidate-set cap for the compiled 2-hop top-k plan.
pub const TOPK_CANDIDATES: usize = 128;

/// What seeds the working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// A single seed vertex.
    Seed(u64),
    /// Every vertex in the snapshot, in ascending id order.
    All,
}

/// A per-vertex predicate evaluated against shard-local attributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pred {
    RankAtLeast(f64),
    RankBelow(f64),
    CommunityEq(u64),
    CommunityNe(u64),
    DegreeAtLeast(u64),
    DegreeBelow(u64),
}

/// How `Expand` accumulates the neighborhood.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpandMode {
    /// Visited-set BFS: the result is every vertex reached within `hops`
    /// hops, excluding the start set; the per-hop frontier is sorted,
    /// deduplicated, and truncated to `cap`. This is the legacy k-hop.
    Frontier,
    /// Union of all per-hop neighbor lists: the result is the sorted,
    /// deduplicated union truncated to `cap` *after* accumulation,
    /// excluding the start set. At `hops = 2` this is the legacy top-k
    /// candidate set (1-hop ∪ 2-hop, revisits allowed).
    Union,
}

/// How a vertex is scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scorer {
    /// Embedding dot product with vertex `v`'s row. `v` itself is always
    /// excluded from the scored set.
    Dot(u64),
    /// The vertex's rank.
    Rank,
    /// The vertex's out-degree.
    Degree,
}

/// One plan stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stage {
    /// Keep vertices satisfying the predicate.
    Filter(Pred),
    /// Replace the set with its `hops`-hop neighborhood.
    Expand { hops: u32, cap: usize, mode: ExpandMode },
    /// Attach a score to every vertex.
    Score(Scorer),
    /// Terminal: global top `k` by (score desc, id asc).
    TopK(usize),
    /// Terminal: the set itself (ascending ids), truncated to `cap`.
    Collect { cap: usize },
}

/// Which float association a `Score(Dot)` stage uses — fixed statically
/// by the plan source so pushdown can never change bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DotAssoc {
    /// One f64 fold over the full row in column order (`All` plans; this
    /// is what shard-local scoring computes).
    FullRow,
    /// Per-column-shard partial sums added in shard order (`Seed` plans;
    /// this is what the scatter to column shards computes).
    ColShards,
}

/// A compound query plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    pub source: Source,
    pub stages: Vec<Stage>,
}

/// Why a plan is not well-formed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    Empty,
    MisplacedTerminal,
    MissingTerminal,
    ExpandNeedsSeed,
    ExpandAfterScore,
    ZeroHops,
    MultipleScore,
    TopKNeedsScore,
    ScoresDropped,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            PlanError::Empty => "plan has no stages",
            PlanError::MisplacedTerminal => "TopK/Collect must be the last stage",
            PlanError::MissingTerminal => "plan must end in TopK or Collect",
            PlanError::ExpandNeedsSeed => "Expand requires a Seed source",
            PlanError::ExpandAfterScore => "Expand may not follow Score",
            PlanError::ZeroHops => "Expand needs hops >= 1",
            PlanError::MultipleScore => "at most one Score stage",
            PlanError::TopKNeedsScore => "TopK requires a preceding Score",
            PlanError::ScoresDropped => "scored plan must end in TopK, not Collect",
        };
        f.write_str(msg)
    }
}

impl Plan {
    /// Check well-formedness (see the module docs for the rules).
    pub fn validate(&self) -> Result<(), PlanError> {
        if self.stages.is_empty() {
            return Err(PlanError::Empty);
        }
        let last = self.stages.len() - 1;
        let mut seen_score = false;
        for (i, st) in self.stages.iter().enumerate() {
            match st {
                Stage::TopK(_) | Stage::Collect { .. } => {
                    if i != last {
                        return Err(PlanError::MisplacedTerminal);
                    }
                }
                Stage::Expand { hops, .. } => {
                    if !matches!(self.source, Source::Seed(_)) {
                        return Err(PlanError::ExpandNeedsSeed);
                    }
                    if seen_score {
                        return Err(PlanError::ExpandAfterScore);
                    }
                    if *hops == 0 {
                        return Err(PlanError::ZeroHops);
                    }
                }
                Stage::Score(_) => {
                    if seen_score {
                        return Err(PlanError::MultipleScore);
                    }
                    seen_score = true;
                }
                Stage::Filter(_) => {}
            }
        }
        match self.stages[last] {
            Stage::TopK(_) if !seen_score => Err(PlanError::TopKNeedsScore),
            Stage::TopK(_) => Ok(()),
            Stage::Collect { .. } if seen_score => Err(PlanError::ScoresDropped),
            Stage::Collect { .. } => Ok(()),
            _ => Err(PlanError::MissingTerminal),
        }
    }

    /// The vertex a `Score(Dot)` stage scores against, if any.
    pub fn dot_vertex(&self) -> Option<u64> {
        self.stages.iter().find_map(|s| match s {
            Stage::Score(Scorer::Dot(v)) => Some(*v),
            _ => None,
        })
    }

    /// The float association every `Score(Dot)` in this plan uses.
    pub fn dot_assoc(&self) -> DotAssoc {
        match self.source {
            Source::All => DotAssoc::FullRow,
            Source::Seed(_) => DotAssoc::ColShards,
        }
    }

    /// The vertex this plan is keyed on — the seed, else the dot-scored
    /// vertex, else none. Used for admission routing and bounds checks.
    pub fn anchor(&self) -> Option<u64> {
        match self.source {
            Source::Seed(v) => Some(v),
            Source::All => self.dot_vertex(),
        }
    }

    /// Re-key a template plan onto vertex `v`: rewrites the seed and any
    /// `Dot` scorer. Lets a load generator draw anchors from a Zipf
    /// distribution over a fixed plan palette.
    pub fn with_anchor(mut self, v: u64) -> Plan {
        if let Source::Seed(s) = &mut self.source {
            *s = v;
        }
        for st in &mut self.stages {
            if let Stage::Score(Scorer::Dot(d)) = st {
                *d = v;
            }
        }
        self
    }

    /// The legacy k-hop query as a plan: frontier BFS from `v`, every
    /// reached vertex collected in ascending order.
    pub fn khop(v: u64, hops: u32) -> Plan {
        Plan {
            source: Source::Seed(v),
            stages: vec![
                Stage::Expand { hops, cap: KHOP_FRONTIER_CAP, mode: ExpandMode::Frontier },
                Stage::Collect { cap: usize::MAX },
            ],
        }
    }

    /// The legacy neighborhood top-k as a plan: 2-hop candidate union,
    /// dot-scored against `v` via column-shard partials.
    pub fn topk(v: u64, k: usize) -> Plan {
        Plan {
            source: Source::Seed(v),
            stages: vec![
                Stage::Expand { hops: 2, cap: TOPK_CANDIDATES, mode: ExpandMode::Union },
                Stage::Score(Scorer::Dot(v)),
                Stage::TopK(k),
            ],
        }
    }

    /// The legacy all-vertex top-k as a plan: every shard dot-scores its
    /// own range against `v`'s full row.
    pub fn topk_all(v: u64, k: usize) -> Plan {
        Plan {
            source: Source::All,
            stages: vec![Stage::Score(Scorer::Dot(v)), Stage::TopK(k)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_legacy_shapes_are_valid() {
        assert_eq!(Plan::khop(3, 2).validate(), Ok(()));
        assert_eq!(Plan::topk(3, 8).validate(), Ok(()));
        assert_eq!(Plan::topk_all(3, 8).validate(), Ok(()));
        let compound = Plan {
            source: Source::Seed(1),
            stages: vec![
                Stage::Filter(Pred::DegreeAtLeast(1)),
                Stage::Expand { hops: 2, cap: 64, mode: ExpandMode::Frontier },
                Stage::Filter(Pred::CommunityEq(3)),
                Stage::Score(Scorer::Dot(1)),
                Stage::TopK(5),
            ],
        };
        assert_eq!(compound.validate(), Ok(()));
        let scored_all = Plan {
            source: Source::All,
            stages: vec![
                Stage::Filter(Pred::RankAtLeast(0.1)),
                Stage::Score(Scorer::Rank),
                Stage::TopK(4),
            ],
        };
        assert_eq!(scored_all.validate(), Ok(()));
    }

    #[test]
    fn validation_rejects_malformed_plans() {
        let p = |source, stages| Plan { source, stages };
        assert_eq!(p(Source::All, vec![]).validate(), Err(PlanError::Empty));
        assert_eq!(
            p(Source::All, vec![Stage::Collect { cap: 5 }, Stage::Collect { cap: 5 }]).validate(),
            Err(PlanError::MisplacedTerminal)
        );
        assert_eq!(
            p(Source::All, vec![Stage::Filter(Pred::CommunityEq(1))]).validate(),
            Err(PlanError::MissingTerminal)
        );
        assert_eq!(
            p(
                Source::All,
                vec![
                    Stage::Expand { hops: 1, cap: 8, mode: ExpandMode::Frontier },
                    Stage::Collect { cap: 8 },
                ],
            )
            .validate(),
            Err(PlanError::ExpandNeedsSeed)
        );
        assert_eq!(
            p(
                Source::Seed(0),
                vec![
                    Stage::Score(Scorer::Rank),
                    Stage::Expand { hops: 1, cap: 8, mode: ExpandMode::Frontier },
                    Stage::TopK(2),
                ],
            )
            .validate(),
            Err(PlanError::ExpandAfterScore)
        );
        assert_eq!(
            p(
                Source::Seed(0),
                vec![
                    Stage::Expand { hops: 0, cap: 8, mode: ExpandMode::Frontier },
                    Stage::Collect { cap: 8 },
                ],
            )
            .validate(),
            Err(PlanError::ZeroHops)
        );
        assert_eq!(
            p(
                Source::All,
                vec![Stage::Score(Scorer::Rank), Stage::Score(Scorer::Degree), Stage::TopK(2)],
            )
            .validate(),
            Err(PlanError::MultipleScore)
        );
        assert_eq!(p(Source::All, vec![Stage::TopK(2)]).validate(), Err(PlanError::TopKNeedsScore));
        assert_eq!(
            p(Source::All, vec![Stage::Score(Scorer::Rank), Stage::Collect { cap: 2 }]).validate(),
            Err(PlanError::ScoresDropped)
        );
    }

    #[test]
    fn anchors_and_rekeying() {
        assert_eq!(Plan::khop(7, 2).anchor(), Some(7));
        assert_eq!(Plan::topk_all(9, 4).anchor(), Some(9));
        let unanchored = Plan {
            source: Source::All,
            stages: vec![Stage::Score(Scorer::Rank), Stage::TopK(3)],
        };
        assert_eq!(unanchored.anchor(), None);

        let rekeyed = Plan::topk(1, 8).with_anchor(42);
        assert_eq!(rekeyed.source, Source::Seed(42));
        assert_eq!(rekeyed.dot_vertex(), Some(42));
        assert_eq!(Plan::topk(1, 8).dot_assoc(), DotAssoc::ColShards);
        assert_eq!(Plan::topk_all(1, 8).dot_assoc(), DotAssoc::FullRow);
    }
}
