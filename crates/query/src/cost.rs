//! Cost-based pushdown planning.
//!
//! The planner picks the *cut*: how many leading stages of a plan
//! execute shard-side ([`crate::exec::run_pushed`] over each shard's
//! own range) before the frontend merges partials in canonical shard
//! order and runs the remaining suffix itself. The objective is the
//! bytes shipped shard→frontend, estimated from per-shard statistics
//! (row counts, degree sums, rank spread, community cardinality) via
//! per-stage selectivity estimates.
//!
//! `cut = 0` is the frontend-only baseline: every shard ships its whole
//! local id set and each suffix stage issues its own attribute/row RPCs
//! — exactly what a coordinator-evaluates-everything engine pays.
//! Because every pushable stage is monotone non-increasing in rows (and
//! `Score` only widens rows 8 → 16 bytes while enabling shard-side
//! `TopK` truncation), deeper cuts never ship more than shallower ones
//! on `All` plans; the estimator still scores every cut and picks the
//! argmin so the decision stays honest if the algebra grows
//! row-expanding stages. `Seed` plans are *refused* (cut 0): their
//! working set starts as one vertex at the frontend, and `Expand`
//! leaves any single shard's range, so there is no shard-local prefix
//! to evaluate.

use crate::plan::{Plan, Pred, Scorer, Source, Stage};

/// Whether the planner may push plan prefixes shard-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PushPolicy {
    /// Cost-based: push the prefix minimizing estimated shipped bytes.
    #[default]
    Auto,
    /// Never push — evaluate everything at the frontend (the ablation
    /// baseline, and the "planner refuses" path under test).
    FrontendOnly,
}

/// Statistics one shard publishes about its local slice.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShardStats {
    /// Vertices in the shard's range.
    pub rows: u64,
    /// Sum of local out-degrees (0 when adjacency is absent).
    pub edges: u64,
    pub has_ranks: bool,
    pub rank_lo: f64,
    pub rank_hi: f64,
    pub has_communities: bool,
    /// Distinct community labels in the local slice.
    pub distinct_communities: u64,
    pub has_embed: bool,
    /// Full-row embedding width (0 when rows are absent).
    pub dim: usize,
}

/// Statistics for the whole tier, indexed by shard.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TierStats {
    pub shards: Vec<ShardStats>,
}

impl TierStats {
    fn total_rows(&self) -> f64 {
        self.shards.iter().map(|s| s.rows as f64).sum()
    }

    fn avg_degree(&self) -> f64 {
        let rows = self.total_rows();
        if rows == 0.0 {
            return 0.0;
        }
        self.shards.iter().map(|s| s.edges as f64).sum::<f64>() / rows
    }

    fn rank_span(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in self.shards.iter().filter(|s| s.has_ranks && s.rows > 0) {
            lo = lo.min(s.rank_lo);
            hi = hi.max(s.rank_hi);
        }
        if lo > hi {
            (0.0, 1.0)
        } else {
            (lo, hi)
        }
    }

    fn distinct_communities(&self) -> f64 {
        self.shards.iter().map(|s| s.distinct_communities).max().unwrap_or(0).max(1) as f64
    }

    fn dim(&self) -> usize {
        self.shards.iter().map(|s| s.dim).max().unwrap_or(0)
    }
}

/// The planner's verdict for one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PushDecision {
    /// Stages `[0, cut)` run shard-side; `[cut, len)` at the frontend.
    pub cut: usize,
    /// Estimated shard→frontend bytes at the chosen cut.
    pub est_bytes: f64,
    /// Estimated bytes for the frontend-only execution (cut 0).
    pub est_bytes_frontend_only: f64,
    /// Why this cut was chosen.
    pub reason: &'static str,
}

/// Estimated fraction of rows a predicate keeps.
fn selectivity(p: Pred, stats: &TierStats) -> f64 {
    match p {
        Pred::RankAtLeast(t) => {
            let (lo, hi) = stats.rank_span();
            if hi <= lo {
                0.5
            } else {
                ((hi - t) / (hi - lo)).clamp(0.0, 1.0)
            }
        }
        Pred::RankBelow(t) => {
            let (lo, hi) = stats.rank_span();
            if hi <= lo {
                0.5
            } else {
                ((t - lo) / (hi - lo)).clamp(0.0, 1.0)
            }
        }
        Pred::CommunityEq(_) => 1.0 / stats.distinct_communities(),
        Pred::CommunityNe(_) => 1.0 - 1.0 / stats.distinct_communities(),
        // Markov bound on the degree tail; exact only for uniform
        // degrees, good enough to rank cuts.
        Pred::DegreeAtLeast(d) => {
            if d == 0 {
                1.0
            } else {
                (stats.avg_degree() / d as f64).min(1.0)
            }
        }
        Pred::DegreeBelow(d) => {
            if d == 0 {
                0.0
            } else {
                (1.0 - stats.avg_degree() / d as f64).clamp(0.0, 1.0)
            }
        }
    }
}

/// Estimated shard→frontend bytes when stages `[0, cut)` are pushed.
/// Mirrors the executor's wire accounting: a pushed leg's response is
/// `16 + rows·(16 if scored else 8)` per shard; each frontend suffix
/// stage pays its own per-row responses (8 B ids/flags/scalars, `4·dim`
/// B embedding rows, `8` B per partial dot per column shard).
fn estimate(plan: &Plan, stats: &TierStats, cut: usize) -> f64 {
    let num_shards = stats.shards.len().max(1) as f64;
    let dim = stats.dim() as f64;

    // Pushed prefix: per-shard surviving row counts.
    let mut rows: Vec<f64> = stats.shards.iter().map(|s| s.rows as f64).collect();
    let mut scored = false;
    for st in &plan.stages[..cut] {
        match st {
            Stage::Filter(p) => {
                let sel = selectivity(*p, stats);
                for r in rows.iter_mut() {
                    *r *= sel;
                }
            }
            Stage::Score(_) => scored = true,
            Stage::TopK(k) => {
                for r in rows.iter_mut() {
                    *r = r.min(*k as f64);
                }
            }
            Stage::Collect { cap } => {
                for r in rows.iter_mut() {
                    *r = r.min(*cap as f64);
                }
            }
            // Unreachable for valid All-source plans; cost it as free.
            Stage::Expand { .. } => {}
        }
    }
    let row_bytes = if scored { 16.0 } else { 8.0 };
    let mut bytes: f64 = rows.iter().map(|r| 16.0 + r * row_bytes).sum();

    // Frontend suffix: aggregate rows flowing through the remaining
    // stages, each paying its own RPC responses.
    let mut flow: f64 = rows.iter().sum();
    for st in &plan.stages[cut..] {
        // A stage touching `flow` rows scatters to at most `num_shards`
        // legs (16 B response header each).
        let headers = 16.0 * num_shards.min(flow.max(1.0));
        match st {
            Stage::Filter(p) => {
                bytes += headers + 8.0 * flow;
                flow *= selectivity(*p, stats);
            }
            Stage::Score(Scorer::Dot(_)) => {
                // ColShards: 8 B per partial per column shard.
                bytes += num_shards * (16.0 + 8.0 * flow);
            }
            Stage::Score(_) => bytes += headers + 8.0 * flow,
            Stage::Expand { .. } => {
                let fanout = stats.avg_degree().max(1.0);
                bytes += headers + 8.0 * flow * fanout;
                flow *= fanout;
            }
            Stage::TopK(k) => flow = flow.min(*k as f64),
            Stage::Collect { cap } => flow = flow.min(*cap as f64),
        }
    }
    let _ = (dim, flow);
    bytes
}

/// Decide the pushdown cut for a plan.
pub fn decide(plan: &Plan, stats: &TierStats, policy: PushPolicy) -> PushDecision {
    let frontend_only = estimate(plan, stats, 0);
    if matches!(plan.source, Source::Seed(_)) {
        return PushDecision {
            cut: 0,
            est_bytes: frontend_only,
            est_bytes_frontend_only: frontend_only,
            reason: "seed plans resolve at the frontend",
        };
    }
    if policy == PushPolicy::FrontendOnly {
        return PushDecision {
            cut: 0,
            est_bytes: frontend_only,
            est_bytes_frontend_only: frontend_only,
            reason: "pushdown disabled by policy",
        };
    }
    let mut best_cut = 0;
    let mut best = frontend_only;
    for cut in 1..=plan.stages.len() {
        let est = estimate(plan, stats, cut);
        // Ties prefer the deeper cut: same bytes, less frontend work.
        if est <= best {
            best = est;
            best_cut = cut;
        }
    }
    PushDecision {
        cut: best_cut,
        est_bytes: best,
        est_bytes_frontend_only: frontend_only,
        reason: if best_cut == 0 { "no profitable prefix" } else { "cost-based pushdown" },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Plan;

    fn stats(shards: usize, rows_each: u64) -> TierStats {
        TierStats {
            shards: (0..shards)
                .map(|_| ShardStats {
                    rows: rows_each,
                    edges: rows_each * 3,
                    has_ranks: true,
                    rank_lo: 0.0,
                    rank_hi: 1.0,
                    has_communities: true,
                    distinct_communities: 8,
                    has_embed: true,
                    dim: 16,
                })
                .collect(),
        }
    }

    #[test]
    fn all_plans_push_to_the_terminal() {
        let s = stats(4, 1000);
        let d = decide(&Plan::topk_all(3, 8), &s, PushPolicy::Auto);
        assert_eq!(d.cut, 2, "score+topk both push");
        assert!(d.est_bytes < d.est_bytes_frontend_only);

        let compound = Plan {
            source: Source::All,
            stages: vec![
                Stage::Filter(Pred::CommunityEq(3)),
                Stage::Score(Scorer::Rank),
                Stage::TopK(8),
            ],
        };
        let d = decide(&compound, &s, PushPolicy::Auto);
        assert_eq!(d.cut, 3);
        // Pushing everything ships ~16·4 + 8·16·4 bytes; frontend-only
        // ships the full id set plus per-stage row traffic.
        assert!(d.est_bytes < d.est_bytes_frontend_only / 10.0);
    }

    #[test]
    fn refusals_pin_cut_to_zero() {
        let s = stats(4, 1000);
        let seed = decide(&Plan::topk(3, 8), &s, PushPolicy::Auto);
        assert_eq!(seed.cut, 0);
        assert_eq!(seed.reason, "seed plans resolve at the frontend");

        let forced = decide(&Plan::topk_all(3, 8), &s, PushPolicy::FrontendOnly);
        assert_eq!(forced.cut, 0);
        assert_eq!(forced.est_bytes, forced.est_bytes_frontend_only);
    }

    #[test]
    fn selectivities_are_sane() {
        let s = stats(2, 100);
        assert!((selectivity(Pred::RankAtLeast(0.75), &s) - 0.25).abs() < 1e-9);
        assert!((selectivity(Pred::RankBelow(0.25), &s) - 0.25).abs() < 1e-9);
        assert!((selectivity(Pred::CommunityEq(1), &s) - 0.125).abs() < 1e-9);
        assert!((selectivity(Pred::CommunityNe(1), &s) - 0.875).abs() < 1e-9);
        assert_eq!(selectivity(Pred::DegreeAtLeast(30), &s), 0.1);
        assert_eq!(selectivity(Pred::DegreeBelow(30), &s), 0.9);
        assert_eq!(selectivity(Pred::DegreeAtLeast(1), &s), 1.0);
    }
}
