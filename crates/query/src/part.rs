//! Range-partitioning math shared by the planner, the interpreter, and
//! the serving tier.
//!
//! Vertex-keyed objects are range-partitioned by vertex id; embedding
//! matrices are partitioned by *column* (every shard holds all rows of
//! its column slice). These three functions are the single source of
//! truth for both layouts — `psgraph-serve` re-exports them, and the
//! cost model and `dot_cols` association in this crate depend on them
//! matching the serving tier exactly.

/// Which shard of `num_shards` owns vertex `v` (range partitioning).
pub fn owner_of(v: u64, num_vertices: u64, num_shards: usize) -> usize {
    let chunk = num_vertices.div_ceil(num_shards as u64).max(1);
    ((v / chunk) as usize).min(num_shards - 1)
}

/// The vertex range `[lo, hi)` stored by `shard`.
pub fn vertex_range(shard: usize, num_vertices: u64, num_shards: usize) -> (u64, u64) {
    let chunk = num_vertices.div_ceil(num_shards as u64).max(1);
    let lo = (shard as u64 * chunk).min(num_vertices);
    let hi = (lo + chunk).min(num_vertices);
    (lo, hi)
}

/// The embedding column range `[lo, hi)` stored by `shard`.
pub fn col_range(shard: usize, cols: usize, num_shards: usize) -> (usize, usize) {
    let chunk = cols.div_ceil(num_shards).max(1);
    let lo = (shard * chunk).min(cols);
    let hi = (lo + chunk).min(cols);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_and_agree_with_owner() {
        for &(n, shards) in &[(10u64, 3usize), (7, 7), (5, 8), (1, 1), (100, 4)] {
            let mut covered = 0;
            for s in 0..shards {
                let (lo, hi) = vertex_range(s, n, shards);
                assert_eq!(lo, covered.min(n));
                covered = hi;
            }
            assert_eq!(covered, n);
            for v in 0..n {
                let s = owner_of(v, n, shards);
                let (lo, hi) = vertex_range(s, n, shards);
                assert!((lo..hi).contains(&v), "v={v} n={n} shards={shards}");
            }
        }
        let mut c = 0;
        for s in 0..5 {
            let (lo, hi) = col_range(s, 3, 5);
            assert_eq!(lo, c);
            c = hi;
        }
        assert_eq!(c, 3);
    }
}
