//! DFS error type.

use std::fmt;

/// Errors surfaced by the mini-HDFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// Path does not exist in the namespace.
    NotFound(String),
    /// Every replica of a block is on a dead datanode.
    AllReplicasDead { path: String, block: u64 },
    /// A block's stored checksum does not match its data.
    Corrupt { path: String, block: u64 },
    /// Fewer live datanodes than the requested replication factor.
    InsufficientDatanodes { live: usize, needed: usize },
    /// Datanode index out of range.
    NoSuchDatanode(usize),
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::NotFound(p) => write!(f, "dfs: path not found: {p}"),
            DfsError::AllReplicasDead { path, block } => {
                write!(f, "dfs: all replicas dead for block {block} of {path}")
            }
            DfsError::Corrupt { path, block } => {
                write!(f, "dfs: checksum mismatch on block {block} of {path}")
            }
            DfsError::InsufficientDatanodes { live, needed } => {
                write!(f, "dfs: {live} live datanodes, need {needed} for replication")
            }
            DfsError::NoSuchDatanode(i) => write!(f, "dfs: no datanode {i}"),
        }
    }
}

impl std::error::Error for DfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        assert!(DfsError::NotFound("/a".into()).to_string().contains("/a"));
        assert!(DfsError::AllReplicasDead { path: "/a".into(), block: 3 }
            .to_string()
            .contains("block 3"));
        assert!(DfsError::Corrupt { path: "/a".into(), block: 1 }
            .to_string()
            .contains("checksum"));
        assert!(DfsError::InsufficientDatanodes { live: 1, needed: 3 }
            .to_string()
            .contains("1 live"));
        assert!(DfsError::NoSuchDatanode(9).to_string().contains('9'));
    }
}
