//! The DFS cluster: namenode metadata, datanodes, and the client API.

use psgraph_sim::bytes::Bytes;
use psgraph_sim::sync::{Mutex, RwLock};
use psgraph_net::Network;
use psgraph_sim::{FaultSite, FxHashMap, NodeClock};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::block::{Block, BlockId};
use crate::error::DfsError;

/// DFS configuration.
#[derive(Debug, Clone)]
pub struct DfsConfig {
    /// Block size in bytes (HDFS default is 128 MiB; scaled down so small
    /// simulated files still exercise multi-block paths).
    pub block_size: usize,
    /// Replication factor.
    pub replication: usize,
    /// Number of datanodes.
    pub datanodes: usize,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig { block_size: 4 << 20, replication: 3, datanodes: 4 }
    }
}

/// One datanode: an in-memory block store that can be killed and restarted.
#[derive(Debug, Default)]
pub struct Datanode {
    blocks: RwLock<FxHashMap<BlockId, Block>>,
    alive: psgraph_sim::sync::Mutex<bool>,
}

impl Datanode {
    fn new() -> Self {
        Datanode { blocks: RwLock::default(), alive: Mutex::new(true) }
    }

    pub fn is_alive(&self) -> bool {
        *self.alive.lock()
    }

    fn store(&self, block: Block) {
        self.blocks.write().insert(block.id, block);
    }

    fn fetch(&self, id: BlockId) -> Option<Block> {
        self.blocks.read().get(&id).cloned()
    }

    fn kill(&self) {
        *self.alive.lock() = false;
        // A dead container loses its (in-memory) block store.
        self.blocks.write().clear();
    }

    fn restart(&self) {
        *self.alive.lock() = true;
    }

    /// Number of block replicas held.
    pub fn block_count(&self) -> usize {
        self.blocks.read().len()
    }

    /// Test hook: flip one byte of a stored replica without updating its
    /// checksum.
    pub fn corrupt(&self, id: BlockId) -> bool {
        let mut map = self.blocks.write();
        if let Some(b) = map.get_mut(&id) {
            if b.data.is_empty() {
                return false;
            }
            let mut v = b.data.to_vec();
            v[0] ^= 0xFF;
            b.data = Bytes::from(v);
            true
        } else {
            false
        }
    }
}

/// Namenode metadata for one file.
#[derive(Debug, Clone)]
struct FileMeta {
    len: u64,
    blocks: Vec<BlockId>,
    /// Replica placement per block (datanode indices).
    placement: Vec<Vec<usize>>,
}

/// Public file status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStatus {
    pub path: String,
    pub len: u64,
    pub blocks: usize,
}

/// The distributed file system handle.
///
/// Cloneable-by-`Arc` by design: construct once per simulated cluster and
/// share. All timing flows through the caller's [`NodeClock`].
#[derive(Debug)]
pub struct Dfs {
    config: DfsConfig,
    network: Network,
    files: RwLock<FxHashMap<String, FileMeta>>,
    datanodes: Vec<Datanode>,
    next_block: Mutex<u64>,
    /// Reads that detected a corrupt replica (checksum mismatch) and fell
    /// back to a good one — the observable half of corruption injection.
    corrupt_fallbacks: AtomicU64,
}

impl Dfs {
    pub fn new(config: DfsConfig, network: Network) -> Self {
        assert!(config.block_size > 0, "block size must be positive");
        assert!(config.replication > 0, "replication must be positive");
        assert!(config.datanodes > 0, "need at least one datanode");
        let datanodes = (0..config.datanodes).map(|_| Datanode::new()).collect();
        Dfs {
            config,
            network,
            files: RwLock::default(),
            datanodes,
            next_block: Mutex::new(0),
            corrupt_fallbacks: AtomicU64::new(0),
        }
    }

    /// A DFS with default config on a default network (tests, examples).
    pub fn in_memory() -> Self {
        Dfs::new(DfsConfig::default(), Network::new(Default::default()))
    }

    pub fn config(&self) -> &DfsConfig {
        &self.config
    }

    fn live_datanodes(&self) -> Vec<usize> {
        (0..self.datanodes.len())
            .filter(|&i| self.datanodes[i].is_alive())
            .collect()
    }

    fn alloc_block_id(&self) -> BlockId {
        let mut n = self.next_block.lock();
        let id = BlockId(*n);
        *n += 1;
        id
    }

    /// Write (create or overwrite) a file. Charges the client network cost
    /// for shipping the bytes and the pipeline's disk cost (HDFS writes
    /// stream through the replica pipeline; the client observes one wire
    /// pass plus the slowest replica's disk write per block).
    pub fn write(&self, path: &str, data: &[u8], client: &NodeClock) -> Result<(), DfsError> {
        let live = self.live_datanodes();
        let repl = self.config.replication.min(self.datanodes.len());
        if live.len() < repl {
            return Err(DfsError::InsufficientDatanodes { live: live.len(), needed: repl });
        }

        let cost = self.network.cost_model();
        let mut blocks = Vec::new();
        let mut placement = Vec::new();
        let chunks: Vec<&[u8]> = if data.is_empty() {
            vec![&[][..]]
        } else {
            data.chunks(self.config.block_size).collect()
        };
        for (bi, chunk) in chunks.into_iter().enumerate() {
            let id = self.alloc_block_id();
            // Rack-unaware round-robin placement over live datanodes.
            let replicas: Vec<usize> =
                (0..repl).map(|r| live[(bi + r) % live.len()]).collect();
            let block = Block::new(id, Bytes::copy_from_slice(chunk));
            for &dn in &replicas {
                self.datanodes[dn].store(block.clone());
            }
            // Chaos: silently corrupt one replica of the fresh block (stale
            // checksum), keyed by the block id so the injection replays
            // bit-identically from the seed. Reads detect the mismatch and
            // fall back to a healthy replica.
            if !chunk.is_empty() {
                let chaos = self.network.chaos();
                if chaos.is_active() && chaos.corrupt(FaultSite::DfsWrite, id.0, 0) {
                    let victim = chaos.pick(FaultSite::DfsWrite, id.0, 0, replicas.len());
                    self.datanodes[replicas[victim]].corrupt(id);
                }
            }
            // Client: one wire pass; pipeline hides replica fan-out.
            client.advance(cost.net_bulk_cost(chunk.len() as u64));
            // Slowest stage of the pipeline: one disk write.
            client.advance(cost.disk_cost(chunk.len() as u64));
            blocks.push(id);
            placement.push(replicas);
        }

        let meta = FileMeta { len: data.len() as u64, blocks, placement };
        self.files.write().insert(path.to_string(), meta);
        Ok(())
    }

    /// Read a whole file. Falls back across replicas if datanodes are dead
    /// or replicas corrupt; charges disk + network per block read.
    pub fn read(&self, path: &str, client: &NodeClock) -> Result<Bytes, DfsError> {
        let meta = self
            .files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| DfsError::NotFound(path.to_string()))?;

        let cost = self.network.cost_model();
        let mut out = Vec::with_capacity(meta.len as usize);
        for (i, (&bid, replicas)) in meta.blocks.iter().zip(&meta.placement).enumerate() {
            let mut found = None;
            let mut saw_corrupt = false;
            for &dn in replicas {
                if !self.datanodes[dn].is_alive() {
                    continue;
                }
                match self.datanodes[dn].fetch(bid) {
                    Some(b) if b.is_valid() => {
                        found = Some(b);
                        break;
                    }
                    Some(_) => saw_corrupt = true,
                    None => {}
                }
            }
            if found.is_some() && saw_corrupt {
                self.corrupt_fallbacks.fetch_add(1, Ordering::Relaxed);
            }
            let block = match found {
                Some(b) => b,
                None if saw_corrupt => {
                    return Err(DfsError::Corrupt { path: path.to_string(), block: i as u64 })
                }
                None => {
                    return Err(DfsError::AllReplicasDead {
                        path: path.to_string(),
                        block: i as u64,
                    })
                }
            };
            client.advance(cost.disk_cost(block.len() as u64));
            client.advance(cost.net_bulk_cost(block.len() as u64));
            out.extend_from_slice(&block.data);
        }
        Ok(Bytes::from(out))
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// File status, if present.
    pub fn status(&self, path: &str) -> Option<FileStatus> {
        self.files.read().get(path).map(|m| FileStatus {
            path: path.to_string(),
            len: m.len,
            blocks: m.blocks.len(),
        })
    }

    /// Delete a file (metadata + replicas). Returns whether it existed.
    pub fn delete(&self, path: &str) -> bool {
        if let Some(meta) = self.files.write().remove(path) {
            for (bid, replicas) in meta.blocks.iter().zip(&meta.placement) {
                for &dn in replicas {
                    self.datanodes[dn].blocks.write().remove(bid);
                }
            }
            true
        } else {
            false
        }
    }

    /// All paths under a prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .files
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Kill a datanode (drops its replicas, as a dead container would).
    pub fn kill_datanode(&self, i: usize) -> Result<(), DfsError> {
        self.datanodes
            .get(i)
            .ok_or(DfsError::NoSuchDatanode(i))?
            .kill();
        Ok(())
    }

    /// Restart a killed datanode (comes back empty; re-replication is out
    /// of scope — reads use surviving replicas).
    pub fn restart_datanode(&self, i: usize) -> Result<(), DfsError> {
        self.datanodes
            .get(i)
            .ok_or(DfsError::NoSuchDatanode(i))?
            .restart();
        Ok(())
    }

    /// Access a datanode (tests / corruption injection).
    pub fn datanode(&self, i: usize) -> Option<&Datanode> {
        self.datanodes.get(i)
    }

    /// Total bytes of user data stored (not counting replication).
    pub fn total_bytes(&self) -> u64 {
        self.files.read().values().map(|m| m.len).sum()
    }

    /// The network this DFS charges costs to (chaos attaches here).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// How many reads checksum-detected a corrupt replica and recovered
    /// from a healthy one.
    pub fn corrupt_fallbacks(&self) -> u64 {
        self.corrupt_fallbacks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psgraph_sim::SimTime;

    fn small_dfs() -> Dfs {
        Dfs::new(
            DfsConfig { block_size: 8, replication: 2, datanodes: 3 },
            Network::new(Default::default()),
        )
    }

    #[test]
    fn write_read_roundtrip_multi_block() {
        let dfs = small_dfs();
        let clk = NodeClock::new();
        let data = b"the quick brown fox jumps over the lazy dog";
        dfs.write("/data/fox.txt", data, &clk).unwrap();
        let st = dfs.status("/data/fox.txt").unwrap();
        assert_eq!(st.len, data.len() as u64);
        assert_eq!(st.blocks, data.len().div_ceil(8));
        let back = dfs.read("/data/fox.txt", &clk).unwrap();
        assert_eq!(&back[..], data);
        assert!(clk.now() > SimTime::ZERO, "I/O must cost simulated time");
    }

    #[test]
    fn empty_file_roundtrip() {
        let dfs = small_dfs();
        let clk = NodeClock::new();
        dfs.write("/empty", b"", &clk).unwrap();
        assert_eq!(dfs.read("/empty", &clk).unwrap().len(), 0);
        assert_eq!(dfs.status("/empty").unwrap().blocks, 1);
    }

    #[test]
    fn overwrite_replaces_content() {
        let dfs = small_dfs();
        let clk = NodeClock::new();
        dfs.write("/f", b"old content", &clk).unwrap();
        dfs.write("/f", b"new", &clk).unwrap();
        assert_eq!(&dfs.read("/f", &clk).unwrap()[..], b"new");
    }

    #[test]
    fn read_missing_is_not_found() {
        let dfs = small_dfs();
        let clk = NodeClock::new();
        assert_eq!(
            dfs.read("/nope", &clk).unwrap_err(),
            DfsError::NotFound("/nope".into())
        );
    }

    #[test]
    fn survives_single_datanode_failure() {
        let dfs = small_dfs();
        let clk = NodeClock::new();
        let data: Vec<u8> = (0..100u8).collect();
        dfs.write("/d", &data, &clk).unwrap();
        dfs.kill_datanode(0).unwrap();
        let back = dfs.read("/d", &clk).unwrap();
        assert_eq!(&back[..], &data[..]);
    }

    #[test]
    fn all_replicas_dead_errors() {
        let dfs = small_dfs();
        let clk = NodeClock::new();
        dfs.write("/d", b"abcdefgh", &clk).unwrap();
        for i in 0..3 {
            dfs.kill_datanode(i).unwrap();
        }
        match dfs.read("/d", &clk).unwrap_err() {
            DfsError::AllReplicasDead { path, .. } => assert_eq!(path, "/d"),
            e => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn restart_does_not_resurrect_lost_blocks() {
        let dfs = small_dfs();
        let clk = NodeClock::new();
        dfs.write("/d", b"abcdefgh", &clk).unwrap();
        for i in 0..3 {
            dfs.kill_datanode(i).unwrap();
            dfs.restart_datanode(i).unwrap();
        }
        // Datanodes are back but empty.
        assert!(dfs.read("/d", &clk).is_err());
        // New writes work again.
        dfs.write("/d2", b"xyz", &clk).unwrap();
        assert_eq!(&dfs.read("/d2", &clk).unwrap()[..], b"xyz");
    }

    #[test]
    fn write_fails_without_enough_live_datanodes() {
        let dfs = small_dfs();
        let clk = NodeClock::new();
        dfs.kill_datanode(0).unwrap();
        dfs.kill_datanode(1).unwrap();
        assert_eq!(
            dfs.write("/d", b"x", &clk).unwrap_err(),
            DfsError::InsufficientDatanodes { live: 1, needed: 2 }
        );
    }

    #[test]
    fn corrupt_replica_falls_back_to_good_one() {
        let dfs = small_dfs();
        let clk = NodeClock::new();
        dfs.write("/d", b"abcdefgh", &clk).unwrap();
        // Corrupt the replica on whichever datanode holds block 0 first.
        let mut corrupted = false;
        for i in 0..3 {
            if dfs.datanode(i).unwrap().corrupt(BlockId(0)) {
                corrupted = true;
                break;
            }
        }
        assert!(corrupted);
        assert_eq!(&dfs.read("/d", &clk).unwrap()[..], b"abcdefgh");
    }

    #[test]
    fn chaos_corruption_is_injected_detected_and_survived() {
        use psgraph_sim::{ChaosConfig, FaultSchedule, SimTime};
        let dfs = Dfs::new(
            DfsConfig { block_size: 8, replication: 3, datanodes: 3 },
            Network::new(Default::default()),
        );
        dfs.network()
            .attach_chaos(FaultSchedule::new(ChaosConfig {
                seed: 5,
                p_corrupt: 1.0,
                ..ChaosConfig::off()
            }));
        let clk = NodeClock::new();
        let data: Vec<u8> = (0..64u8).collect();
        dfs.write("/chaos/blob", &data, &clk).unwrap();
        // Every block had one replica corrupted; reads still succeed by
        // falling back, and each fallback is counted.
        let back = dfs.read("/chaos/blob", &clk).unwrap();
        assert_eq!(&back[..], &data[..]);
        // Fallbacks fire only when the corrupt replica is tried before a
        // good one, so the count is ≤ blocks — but with every block
        // corrupted some must be detected.
        assert!(dfs.corrupt_fallbacks() >= 1, "no corruption was ever detected");
        // Same seed corrupts the same replicas: a second identical cluster
        // produces the same observable history.
        let dfs2 = Dfs::new(
            DfsConfig { block_size: 8, replication: 3, datanodes: 3 },
            Network::new(Default::default()),
        );
        dfs2.network()
            .attach_chaos(FaultSchedule::new(ChaosConfig {
                seed: 5,
                p_corrupt: 1.0,
                ..ChaosConfig::off()
            }));
        let clk2 = NodeClock::new();
        dfs2.write("/chaos/blob", &data, &clk2).unwrap();
        dfs2.read("/chaos/blob", &clk2).unwrap();
        assert_eq!(dfs2.corrupt_fallbacks(), dfs.corrupt_fallbacks());
        assert_eq!(clk2.now(), clk.now());
        let _ = SimTime::ZERO;
    }

    #[test]
    fn all_replicas_corrupt_is_reported() {
        let dfs = small_dfs();
        let clk = NodeClock::new();
        dfs.write("/d", b"abcdefgh", &clk).unwrap();
        for i in 0..3 {
            dfs.datanode(i).unwrap().corrupt(BlockId(0));
        }
        match dfs.read("/d", &clk).unwrap_err() {
            DfsError::Corrupt { block, .. } => assert_eq!(block, 0),
            e => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn delete_removes_metadata_and_replicas() {
        let dfs = small_dfs();
        let clk = NodeClock::new();
        dfs.write("/d", b"abcdefgh12345678", &clk).unwrap();
        let held: usize = (0..3).map(|i| dfs.datanode(i).unwrap().block_count()).sum();
        assert!(held > 0);
        assert!(dfs.delete("/d"));
        assert!(!dfs.exists("/d"));
        assert!(!dfs.delete("/d"));
        let held: usize = (0..3).map(|i| dfs.datanode(i).unwrap().block_count()).sum();
        assert_eq!(held, 0);
    }

    #[test]
    fn list_filters_by_prefix_sorted() {
        let dfs = small_dfs();
        let clk = NodeClock::new();
        dfs.write("/ckpt/b", b"1", &clk).unwrap();
        dfs.write("/ckpt/a", b"2", &clk).unwrap();
        dfs.write("/data/x", b"3", &clk).unwrap();
        assert_eq!(dfs.list("/ckpt/"), vec!["/ckpt/a", "/ckpt/b"]);
        assert_eq!(dfs.total_bytes(), 3);
    }

    #[test]
    fn larger_files_cost_more_simulated_time() {
        let dfs = Dfs::in_memory();
        let a = NodeClock::new();
        let b = NodeClock::new();
        dfs.write("/small", &vec![0u8; 1 << 10], &a).unwrap();
        dfs.write("/big", &vec![0u8; 1 << 22], &b).unwrap();
        assert!(b.now() > a.now());
    }
}
