//! Blocks: the unit of DFS storage, replication, and checksumming.

use psgraph_sim::bytes::Bytes;
use psgraph_sim::hash::FxHasher;
use std::hash::Hasher;

/// Globally unique block identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// Checksum used to detect block corruption (FxHash over the payload;
/// collision resistance is irrelevant for fault detection in a simulator).
pub fn checksum(data: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(data);
    h.finish()
}

/// One stored block replica.
#[derive(Debug, Clone)]
pub struct Block {
    pub id: BlockId,
    pub data: Bytes,
    pub checksum: u64,
}

impl Block {
    pub fn new(id: BlockId, data: Bytes) -> Self {
        let checksum = checksum(&data);
        Block { id, data, checksum }
    }

    /// Verify integrity.
    pub fn is_valid(&self) -> bool {
        checksum(&self.data) == self.checksum
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_block_is_valid() {
        let b = Block::new(BlockId(1), Bytes::from_static(b"hello"));
        assert!(b.is_valid());
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
    }

    #[test]
    fn corruption_detected() {
        let mut b = Block::new(BlockId(1), Bytes::from_static(b"hello"));
        b.data = Bytes::from_static(b"hellX");
        assert!(!b.is_valid());
    }

    #[test]
    fn checksum_deterministic_and_content_sensitive() {
        assert_eq!(checksum(b"abc"), checksum(b"abc"));
        assert_ne!(checksum(b"abc"), checksum(b"abd"));
        assert_eq!(checksum(b""), checksum(b""));
    }

    #[test]
    fn empty_block() {
        let b = Block::new(BlockId(0), Bytes::new());
        assert!(b.is_valid());
        assert!(b.is_empty());
    }
}
