//! A miniature HDFS for the simulated cluster.
//!
//! Files are split into fixed-size blocks, replicated across in-memory
//! datanodes, and checksummed. A namenode tracks file → block → replica
//! metadata. Reads fall back across replicas when datanodes die, and every
//! operation charges disk + network costs to the caller's simulated clock —
//! which is what makes Euler's read-everything/write-everything
//! preprocessing passes expensive in the Table I reproduction, and what
//! prices PSGraph's checkpoint/recovery path in Table II.

pub mod block;
pub mod cluster;
pub mod error;

pub use block::{checksum, Block, BlockId};
pub use cluster::{Datanode, Dfs, DfsConfig, FileStatus};
pub use error::DfsError;
