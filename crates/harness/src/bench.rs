//! Criterion-style micro-benchmark harness with JSON reports.
//!
//! Each bench group performs per-function warmup plus N individually
//! timed iterations, computes mean/p50/p95/p99/min/max, prints a one-line
//! summary, and appends a `BENCH_<group>.json` report under the workspace
//! `results/` directory so perf trajectories accumulate across PRs.
//!
//! Besides wall-clock iteration timing, a group can record *pre-measured*
//! sample sets ([`Group::bench_recorded`]) — e.g. per-query simulated
//! latencies from a load generator — and attach scalar metrics
//! ([`Group::metric`]) such as QPS or a cache hit rate to the report.
//!
//! Environment knobs:
//! * `PSGRAPH_BENCH_FAST=1` — 1 warmup + 3 samples regardless of the
//!   configured sample size (CI smoke mode).
//! * `PSGRAPH_BENCH_OUT=<dir>` — report directory override.

use crate::json::Json;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

pub use std::hint::black_box;

/// A two-part benchmark id, rendered as `function/parameter` (criterion's
/// convention, kept so existing result tooling reads the same labels).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> String {
        id.0
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Mean + order statistics over one nanosecond sample set.
#[derive(Debug, Clone)]
pub struct Summary {
    pub samples: usize,
    pub mean_ns: f64,
    pub p50_ns: f64,
    pub p95_ns: f64,
    pub p99_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
}

impl Summary {
    fn from_ns(mut ns: Vec<f64>) -> Self {
        assert!(!ns.is_empty());
        ns.sort_unstable_by(f64::total_cmp);
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        // Nearest-rank percentile on the sorted samples.
        let pct = |p: f64| ns[((ns.len() as f64 * p).ceil() as usize).clamp(1, ns.len()) - 1];
        Summary {
            samples: ns.len(),
            mean_ns: mean,
            p50_ns: pct(0.50),
            p95_ns: pct(0.95),
            p99_ns: pct(0.99),
            min_ns: ns[0],
            max_ns: ns[ns.len() - 1],
        }
    }

    fn json_fields(&self) -> Vec<(String, Json)> {
        vec![
            ("samples".into(), Json::Int(self.samples as i64)),
            ("mean_ns".into(), Json::Float(self.mean_ns)),
            ("p50_ns".into(), Json::Float(self.p50_ns)),
            ("p95_ns".into(), Json::Float(self.p95_ns)),
            ("p99_ns".into(), Json::Float(self.p99_ns)),
            ("min_ns".into(), Json::Float(self.min_ns)),
            ("max_ns".into(), Json::Float(self.max_ns)),
        ]
    }
}

/// Measured statistics for one benchmark, all in nanoseconds. The flat
/// fields are wall-clock (host) time; `sim` is the simulated-clock view
/// when the workload reported one ([`Bencher::iter_sim`]).
#[derive(Debug, Clone)]
pub struct BenchStats {
    pub id: String,
    pub samples: usize,
    pub mean_ns: f64,
    pub p50_ns: f64,
    pub p95_ns: f64,
    pub p99_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    pub sim: Option<Summary>,
}

impl BenchStats {
    fn from_samples(id: String, samples: &[Duration]) -> Self {
        let wall = Summary::from_ns(samples.iter().map(|d| d.as_nanos() as f64).collect());
        Self::from_summaries(id, wall, None)
    }

    fn from_summaries(id: String, wall: Summary, sim: Option<Summary>) -> Self {
        BenchStats {
            id,
            samples: wall.samples,
            mean_ns: wall.mean_ns,
            p50_ns: wall.p50_ns,
            p95_ns: wall.p95_ns,
            p99_ns: wall.p99_ns,
            min_ns: wall.min_ns,
            max_ns: wall.max_ns,
            sim,
        }
    }

    fn wall_summary(&self) -> Summary {
        Summary {
            samples: self.samples,
            mean_ns: self.mean_ns,
            p50_ns: self.p50_ns,
            p95_ns: self.p95_ns,
            p99_ns: self.p99_ns,
            min_ns: self.min_ns,
            max_ns: self.max_ns,
        }
    }

    fn to_json(&self) -> Json {
        // Flat fields stay for existing result tooling; dual-clock runs
        // additionally nest explicit `wall_ns` / `sim_ns` objects.
        let mut fields = vec![("id".into(), Json::str(&self.id))];
        fields.extend(self.wall_summary().json_fields());
        if let Some(sim) = &self.sim {
            fields.push(("wall_ns".into(), Json::Obj(self.wall_summary().json_fields())));
            fields.push(("sim_ns".into(), Json::Obj(sim.json_fields())));
        }
        Json::Obj(fields)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs and times the
/// workload.
pub struct Bencher {
    warmup_iters: u32,
    sample_size: u32,
    samples: Vec<Duration>,
    sim_samples: Vec<u64>,
}

impl Bencher {
    /// Run `f` for warmup, then `sample_size` timed iterations. Each
    /// iteration is timed individually (the workloads here are simulator
    /// runs in the micro-to-milliseconds range, so per-iteration clock
    /// resolution is ample).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        for _ in 0..self.warmup_iters {
            black_box(f());
        }
        self.samples.reserve(self.sample_size as usize);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    /// Like [`Bencher::iter`] for simulator workloads: `f` returns the
    /// iteration's *simulated* duration in nanoseconds, and each sample
    /// records the wall-clock and simulated time side by side. The report
    /// then carries both views — simulated cost is pool-size-invariant
    /// while wall time shows the real scaling.
    pub fn iter_sim(&mut self, mut f: impl FnMut() -> u64) {
        for _ in 0..self.warmup_iters {
            black_box(f());
        }
        self.samples.reserve(self.sample_size as usize);
        self.sim_samples.reserve(self.sample_size as usize);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            let sim_ns = black_box(f());
            self.samples.push(t0.elapsed());
            self.sim_samples.push(sim_ns);
        }
    }
}

/// One named benchmark group (mirrors criterion's `BenchmarkGroup`).
pub struct Group<'h> {
    harness: &'h mut Harness,
    name: String,
    sample_size: u32,
    warmup_iters: u32,
    stats: Vec<BenchStats>,
    metrics: Vec<(String, f64)>,
}

impl Group<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u32;
        self
    }

    pub fn warmup_iters(&mut self, n: u32) -> &mut Self {
        self.warmup_iters = n;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id: String = id.into().into();
        let (warmup, size) = if self.harness.fast {
            (1, self.sample_size.min(3))
        } else {
            (self.warmup_iters, self.sample_size)
        };
        let mut b = Bencher {
            warmup_iters: warmup,
            sample_size: size.max(1),
            samples: Vec::new(),
            sim_samples: Vec::new(),
        };
        f(&mut b);
        assert!(
            !b.samples.is_empty(),
            "bench '{}/{}' never called Bencher::iter",
            self.name,
            id
        );
        let wall = Summary::from_ns(b.samples.iter().map(|d| d.as_nanos() as f64).collect());
        let sim = (!b.sim_samples.is_empty())
            .then(|| Summary::from_ns(b.sim_samples.iter().map(|&n| n as f64).collect()));
        let stats = BenchStats::from_summaries(id, wall, sim);
        self.print_and_push(stats);
        self
    }

    /// Record a pre-measured sample set (e.g. per-query *simulated*
    /// latencies from a load generator) under `id`. The samples are
    /// reduced to the same stats as a timed benchmark and land in the
    /// same JSON report.
    pub fn bench_recorded(
        &mut self,
        id: impl Into<BenchmarkId>,
        samples: &[Duration],
    ) -> &mut Self {
        let id: String = id.into().into();
        assert!(!samples.is_empty(), "bench '{}/{}' recorded no samples", self.name, id);
        let stats = BenchStats::from_samples(id, samples);
        self.print_and_push(stats);
        self
    }

    /// Attach a scalar metric (hit rate, QPS, …) to the group report.
    pub fn metric(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.metrics.push((key.into(), value));
        self
    }

    /// Mean wall-clock (ns) of the most recently recorded benchmark —
    /// scaling sweeps derive speedup metrics from it.
    pub fn last_mean_ns(&self) -> Option<f64> {
        self.stats.last().map(|s| s.mean_ns)
    }

    fn print_and_push(&mut self, stats: BenchStats) {
        let sim_note = stats
            .sim
            .as_ref()
            .map_or(String::new(), |s| format!(", sim {:.3} ms", s.mean_ns / 1e6));
        eprintln!(
            "bench {}/{}: mean {:.3} ms, p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms{} ({} samples)",
            self.name,
            stats.id,
            stats.mean_ns / 1e6,
            stats.p50_ns / 1e6,
            stats.p95_ns / 1e6,
            stats.p99_ns / 1e6,
            sim_note,
            stats.samples,
        );
        self.stats.push(stats);
    }

    /// Record the group's report with the harness (written at
    /// [`Harness::finish`]).
    pub fn finish(self) {
        let report =
            GroupReport { name: self.name, stats: self.stats, metrics: self.metrics };
        self.harness.reports.push(report);
    }
}

struct GroupReport {
    name: String,
    stats: Vec<BenchStats>,
    metrics: Vec<(String, f64)>,
}

impl GroupReport {
    fn to_json(&self) -> Json {
        let ts = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        let mut fields = vec![
            ("group".into(), Json::str(&self.name)),
            ("unit".into(), Json::str("ns")),
            ("timestamp_unix".into(), Json::Int(ts as i64)),
            (
                "benchmarks".into(),
                Json::Arr(self.stats.iter().map(BenchStats::to_json).collect()),
            ),
        ];
        if !self.metrics.is_empty() {
            fields.push((
                "metrics".into(),
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Float(*v)))
                        .collect(),
                ),
            ));
        }
        Json::Obj(fields)
    }
}

/// Locate the workspace `results/` directory: explicit override, else the
/// nearest ancestor holding a workspace-root `Cargo.toml`, else CWD.
fn default_out_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("PSGRAPH_BENCH_OUT") {
        return PathBuf::from(dir);
    }
    let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut cur: Option<&Path> = Some(&start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir.join("results");
            }
        }
        cur = dir.parent();
    }
    start.join("results")
}

/// The directory bench reports land in: the `PSGRAPH_BENCH_OUT` override
/// or the workspace `results/`. Public so non-bench report writers
/// (`repro -- chaos`) put their JSON beside the bench reports.
pub fn out_dir() -> PathBuf {
    default_out_dir()
}

/// The top-level bench driver (criterion's `Criterion` analogue).
pub struct Harness {
    reports: Vec<GroupReport>,
    out_dir: PathBuf,
    fast: bool,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::from_env()
    }
}

impl Harness {
    pub fn from_env() -> Self {
        Harness {
            reports: Vec::new(),
            out_dir: default_out_dir(),
            fast: std::env::var("PSGRAPH_BENCH_FAST").is_ok_and(|v| v != "0"),
        }
    }

    pub fn with_out_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.out_dir = dir.into();
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            harness: self,
            name: name.into(),
            sample_size: 20,
            warmup_iters: 2,
            stats: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Write one `BENCH_<group>.json` per recorded group.
    pub fn finish(self) {
        if self.reports.is_empty() {
            return;
        }
        if let Err(e) = std::fs::create_dir_all(&self.out_dir) {
            eprintln!("bench: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        for report in &self.reports {
            let path = self.out_dir.join(format!("BENCH_{}.json", report.name));
            match std::fs::write(&path, report.to_json().pretty() + "\n") {
                Ok(()) => eprintln!("bench: wrote {}", path.display()),
                Err(e) => eprintln!("bench: cannot write {}: {e}", path.display()),
            }
        }
    }
}

/// Generate `main()` for a `harness = false` bench target from a list of
/// `fn(&mut Harness)` functions — the `criterion_group!` +
/// `criterion_main!` replacement.
#[macro_export]
macro_rules! bench_main {
    ($($f:path),+ $(,)?) => {
        fn main() {
            let mut harness = $crate::bench::Harness::from_env();
            $( $f(&mut harness); )+
            harness.finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_percentiles_are_order_statistics() {
        let mut samples: Vec<Duration> =
            (1..=100).rev().map(Duration::from_nanos).collect();
        let s = BenchStats::from_samples("x".into(), &mut samples);
        assert_eq!(s.samples, 100);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.max_ns, 100.0);
        assert_eq!(s.p50_ns, 50.0);
        assert_eq!(s.p95_ns, 95.0);
        assert_eq!(s.p99_ns, 99.0);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
    }

    #[test]
    fn recorded_samples_and_metrics_reach_the_report() {
        let dir = std::env::temp_dir().join(format!(
            "psgraph-harness-recorded-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut h = Harness::from_env().with_out_dir(&dir);
        h.fast = true;
        let mut g = h.benchmark_group("recorded_group");
        let latencies: Vec<Duration> = (1..=50).map(Duration::from_micros).collect();
        g.bench_recorded("query_latency/zipf", &latencies);
        g.metric("hit_rate", 0.75).metric("qps", 12_500.0);
        g.finish();
        h.finish();
        let report =
            std::fs::read_to_string(dir.join("BENCH_recorded_group.json")).unwrap();
        assert!(report.contains("\"id\": \"query_latency/zipf\""));
        assert!(report.contains("p99_ns"));
        assert!(report.contains("\"hit_rate\": 0.75"));
        assert!(report.contains("\"qps\": 12500"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_measures_and_writes_report() {
        let dir = std::env::temp_dir().join(format!(
            "psgraph-harness-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut h = Harness::from_env().with_out_dir(&dir);
        h.fast = true;
        let mut g = h.benchmark_group("unit_test_group");
        g.sample_size(5).bench_function(BenchmarkId::new("noop", "fast"), |b| {
            b.iter(|| black_box(2 + 2))
        });
        g.bench_function("plain_name", |b| b.iter(|| ()));
        g.finish();
        h.finish();
        let report =
            std::fs::read_to_string(dir.join("BENCH_unit_test_group.json")).unwrap();
        assert!(report.contains("\"group\": \"unit_test_group\""));
        assert!(report.contains("\"id\": \"noop/fast\""));
        assert!(report.contains("\"id\": \"plain_name\""));
        assert!(report.contains("mean_ns"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn iter_sim_reports_both_clocks() {
        let dir = std::env::temp_dir().join(format!(
            "psgraph-harness-dual-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut h = Harness::from_env().with_out_dir(&dir);
        h.fast = true;
        let mut g = h.benchmark_group("dual_clock_group");
        g.sample_size(3).bench_function("simulated", |b| {
            b.iter_sim(|| 1_000_000u64) // every iteration: 1 ms of sim time
        });
        g.finish();
        h.finish();
        let report =
            std::fs::read_to_string(dir.join("BENCH_dual_clock_group.json")).unwrap();
        assert!(report.contains("\"wall_ns\""));
        assert!(report.contains("\"sim_ns\""));
        // Legacy flat fields still present.
        assert!(report.contains("\"mean_ns\""));
        assert!(report.contains("\"sim_ns\": {"));
        assert!(report.contains("\"p50_ns\": 1000000"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fast_mode_caps_samples() {
        let mut h = Harness::from_env();
        h.fast = true;
        let mut g = h.benchmark_group("fast_cap");
        let mut calls = 0u32;
        g.sample_size(50).bench_function("counted", |b| {
            b.iter(|| calls += 1);
        });
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
        g.finish();
    }
}
