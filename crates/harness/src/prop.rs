//! Property-based testing without external crates.
//!
//! Architecture (the Hypothesis model): every random decision a generator
//! makes is a bounded integer **choice** drawn through a [`Source`], and
//! the sequence of choices is recorded. A failing case is *shrunk* by
//! minimizing the choice sequence — deleting blocks, zeroing, and
//! lowering individual choices — and replaying the generator over the
//! minimized sequence. Because generators are deterministic functions of
//! their choices, shrinking composes through `map`/`and_then` for free,
//! which is what classic typed-shrinker designs struggle with.
//!
//! Determinism: the base seed is fixed per property (derived from the
//! property name) so CI runs are reproducible; `PSGRAPH_PROP_SEED=<n>`
//! overrides the base seed, and `PSGRAPH_PROP_CASES=<n>` the case budget.
//! Every failure message includes the values to replay it.

use psgraph_sim::SplitMix64;
use std::cell::Cell;
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// Resolution of f64 choices: 53 mantissa bits, so `[0, 1)` is dense.
const F64_BOUND: u64 = 1 << 53;

thread_local! {
    static IN_PROP_RUN: Cell<bool> = const { Cell::new(false) };
}

/// Install (once per process) a panic hook that stays silent while a
/// property case is executing on the panicking thread — shrinking replays
/// the failing case hundreds of times and each replay panics by design.
fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !IN_PROP_RUN.with(|f| f.get()) {
                previous(info);
            }
        }));
    });
}

/// The stream of bounded choices a generator draws from.
///
/// Live mode draws fresh values from a seeded RNG; replay mode re-reads a
/// (possibly mutated) recorded sequence, reducing out-of-range values
/// modulo the bound and returning 0 when the sequence is exhausted — both
/// keep mutated sequences valid, which is what makes shrinking a plain
/// search over `Vec<u64>`.
pub struct Source {
    rng: SplitMix64,
    replay: Option<Vec<u64>>,
    draws: Vec<u64>,
    pos: usize,
}

impl Source {
    /// A live source: fresh choices from `seed`, recorded as drawn.
    pub fn live(seed: u64) -> Self {
        Source { rng: SplitMix64::new(seed), replay: None, draws: Vec::new(), pos: 0 }
    }

    /// A replay source over a recorded (or shrunk) choice sequence.
    pub fn replay(choices: Vec<u64>) -> Self {
        Source { rng: SplitMix64::new(0), replay: Some(choices), draws: Vec::new(), pos: 0 }
    }

    /// The recorded choice sequence so far.
    pub fn record(&self) -> &[u64] {
        &self.draws
    }

    /// Draw a choice in `[0, bound)`. The fundamental operation: every
    /// other helper bottoms out here, so every generator decision is one
    /// recorded integer and "smaller recorded integer" means "simpler
    /// generated value".
    pub fn choice(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "choice bound must be positive");
        let v = match &self.replay {
            Some(seq) => seq.get(self.pos).map_or(0, |&r| r % bound),
            None => self.rng.next_below(bound),
        };
        self.draws.push(v);
        self.pos += 1;
        v
    }

    pub fn u64_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.choice(hi - lo)
    }

    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_range(lo as u64, hi as u64) as usize
    }

    pub fn i64_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add(self.choice(hi.abs_diff(lo)) as i64)
    }

    /// Any `u64` (shrinks toward 0).
    pub fn any_u64(&mut self) -> u64 {
        // Two 32-bit choices: u64::MAX is not a valid `choice` bound.
        let hi = self.choice(1 << 32);
        let lo = self.choice(1 << 32);
        (hi << 32) | lo
    }

    pub fn bool(&mut self) -> bool {
        self.choice(2) == 1
    }

    /// Uniform in `[0, 1)` with 53-bit resolution (shrinks toward 0.0).
    pub fn f64_unit(&mut self) -> f64 {
        self.choice(F64_BOUND) as f64 * (1.0 / F64_BOUND as f64)
    }

    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.f64_unit() * (hi - lo)
    }

    /// A vector with length in `[min_len, max_len)`, elements from `f`.
    /// The length is one choice, so shrinking shortens vectors directly.
    pub fn vec_with<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Source) -> T,
    ) -> Vec<T> {
        let len = self.usize_range(min_len, max_len);
        (0..len).map(|_| f(self)).collect()
    }
}

/// A reusable generator: a deterministic function from choices to values.
pub struct Gen<T> {
    f: Box<dyn Fn(&mut Source) -> T>,
}

impl<T: 'static> Gen<T> {
    pub fn new(f: impl Fn(&mut Source) -> T + 'static) -> Self {
        Gen { f: Box::new(f) }
    }

    pub fn generate(&self, src: &mut Source) -> T {
        (self.f)(src)
    }

    pub fn constant(value: T) -> Self
    where
        T: Clone,
    {
        Gen::new(move |_| value.clone())
    }

    pub fn map<U: 'static>(self, g: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::new(move |src| g((self.f)(src)))
    }

    /// Monadic bind: the second generator may depend on the first value
    /// (proptest's `prop_flat_map`).
    pub fn and_then<U: 'static>(self, g: impl Fn(T, &mut Source) -> U + 'static) -> Gen<U> {
        Gen::new(move |src| {
            let t = (self.f)(src);
            g(t, src)
        })
    }

    pub fn vec(self, min_len: usize, max_len: usize) -> Gen<Vec<T>> {
        Gen::new(move |src| {
            let len = src.usize_range(min_len, max_len);
            (0..len).map(|_| (self.f)(src)).collect()
        })
    }

    pub fn zip<U: 'static>(self, other: Gen<U>) -> Gen<(T, U)> {
        Gen::new(move |src| ((self.f)(src), (other.f)(src)))
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to generate and check.
    pub cases: u32,
    /// Base seed; case `i` runs on an independent stream forked from it.
    /// `None` derives a fixed seed from the property name.
    pub seed: Option<u64>,
    /// Budget of property re-executions the shrinker may spend.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64, seed: None, max_shrink_iters: 1000 }
    }
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases, ..Default::default() }
    }
}

/// `Ok(())` or a falsification message.
pub type PropResult = Result<(), String>;

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| {
        v.parse()
            .or_else(|_| u64::from_str_radix(v.trim_start_matches("0x"), 16))
            .ok()
    })
}

/// Run one case: generate from `src`, then apply the property, catching
/// panics so `unwrap()`/`assert!` inside properties falsify instead of
/// aborting the shrink search.
fn run_case<T>(
    gen: &impl Fn(&mut Source) -> T,
    prop: &impl Fn(&T) -> PropResult,
    src: &mut Source,
) -> PropResult {
    IN_PROP_RUN.with(|f| f.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(&gen(src))));
    IN_PROP_RUN.with(|f| f.set(false));
    match outcome {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Minimize a failing choice sequence. Returns the smallest sequence
/// found that still fails, together with its error.
fn shrink<T>(
    gen: &impl Fn(&mut Source) -> T,
    prop: &impl Fn(&T) -> PropResult,
    mut choices: Vec<u64>,
    mut error: String,
    budget: u32,
) -> (Vec<u64>, String, u32) {
    let mut spent = 0u32;
    let try_candidate = |cand: Vec<u64>, spent: &mut u32| -> Option<(Vec<u64>, String)> {
        if *spent >= budget {
            return None;
        }
        *spent += 1;
        let mut src = Source::replay(cand);
        match run_case(gen, prop, &mut src) {
            Err(e) => {
                // Keep only the choices the generator actually consumed.
                Some((src.record().to_vec(), e))
            }
            Ok(()) => None,
        }
    };

    let mut improved = true;
    while improved && spent < budget {
        improved = false;

        // Pass 1: delete trailing-to-leading blocks (shortens vectors and
        // drops whole generated substructures).
        for block in [8usize, 4, 2, 1] {
            let mut i = choices.len().saturating_sub(block);
            loop {
                if i + block <= choices.len() {
                    let mut cand = choices.clone();
                    cand.drain(i..i + block);
                    if let Some((c, e)) = try_candidate(cand, &mut spent) {
                        if c.len() < choices.len() || c < choices {
                            choices = c;
                            error = e;
                            improved = true;
                        }
                    }
                }
                if i == 0 || spent >= budget {
                    break;
                }
                i = i.saturating_sub(block);
            }
        }

        // Pass 2: lower individual choices toward zero. Try 0 outright,
        // then binary-search the smallest value that still falsifies —
        // linear `v - 1` descent would burn the whole budget walking down
        // from a large choice without reaching the true minimum.
        let mut i = 0;
        while i < choices.len() {
            if choices[i] > 0 && spent < budget {
                let mut cand = choices.clone();
                cand[i] = 0;
                if let Some((c, e)) = try_candidate(cand, &mut spent) {
                    choices = c;
                    error = e;
                    improved = true;
                } else if i < choices.len() {
                    let mut lo = 0u64; // largest known-passing value
                    let mut hi = choices[i]; // smallest known-failing value
                    while lo + 1 < hi && spent < budget {
                        let mid = lo + (hi - lo) / 2;
                        let mut cand = choices.clone();
                        cand[i] = mid;
                        match try_candidate(cand, &mut spent) {
                            Some((c, e)) => {
                                choices = c;
                                error = e;
                                improved = true;
                                hi = mid;
                                if i >= choices.len() {
                                    break;
                                }
                            }
                            None => lo = mid,
                        }
                    }
                }
            }
            i += 1;
        }
    }
    (choices, error, spent)
}

/// Check `prop` over `cases` generated inputs; panics with a replayable
/// report on the first (shrunk) falsification.
///
/// `gen` is any `Fn(&mut Source) -> T` — a closure or a [`Gen`] via
/// [`Gen::generate`].
pub fn check_with<T: Debug>(
    name: &str,
    config: &Config,
    gen: impl Fn(&mut Source) -> T,
    prop: impl Fn(&T) -> PropResult,
) {
    install_quiet_hook();
    let cases = env_u64("PSGRAPH_PROP_CASES").map_or(config.cases, |v| v as u32).max(1);
    let base_seed = env_u64("PSGRAPH_PROP_SEED")
        .or(config.seed)
        .unwrap_or_else(|| {
            use std::hash::{Hash, Hasher};
            let mut h = psgraph_sim::FxHasher::default();
            name.hash(&mut h);
            h.finish()
        });

    let mut root = SplitMix64::new(base_seed);
    for case in 0..cases {
        let case_seed = root.fork(case as u64).next();
        let mut src = Source::live(case_seed);
        if let Err(original_error) = run_case(&gen, &prop, &mut src) {
            let (choices, error, spent) = shrink(
                &gen,
                &prop,
                src.record().to_vec(),
                original_error.clone(),
                config.max_shrink_iters,
            );
            // Regenerate the minimized value for the report.
            let value = gen(&mut Source::replay(choices));
            panic!(
                "property '{name}' falsified\n\
                 \x20 case {case_no} of {cases}; replay with PSGRAPH_PROP_SEED={base_seed} \
                 PSGRAPH_PROP_CASES={cases}\n\
                 \x20 shrunk input ({spent} shrink runs): {value:#?}\n\
                 \x20 error: {error}\n\
                 \x20 original error: {original_error}",
                case_no = case + 1,
            );
        }
    }
}

/// [`check_with`] under the default [`Config`].
pub fn check<T: Debug>(
    name: &str,
    gen: impl Fn(&mut Source) -> T,
    prop: impl Fn(&T) -> PropResult,
) {
    check_with(name, &Config::default(), gen, prop);
}

/// Early-return falsification, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Early-return equality falsification, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "{} != {}\n  left: {:?}\n  right: {:?}",
                stringify!($a), stringify!($b), a, b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($fmt)+), a, b
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u32;
        let counter = std::cell::RefCell::new(&mut ran);
        check_with(
            "sum_commutes",
            &Config::with_cases(40),
            |src| (src.u64_range(0, 100), src.u64_range(0, 100)),
            |&(a, b)| {
                **counter.borrow_mut() += 1;
                prop_assert_eq!(a + b, b + a);
                Ok(())
            },
        );
        assert_eq!(ran, 40);
    }

    #[test]
    fn failing_property_shrinks_to_minimal_counterexample() {
        // "All vectors have length < 5" is falsified; minimal
        // counterexample is a vector of exactly 5 zeros.
        let result = panic::catch_unwind(|| {
            check_with(
                "short_vectors",
                &Config::with_cases(200),
                |src| src.vec_with(0, 40, |s| s.u64_range(0, 1000)),
                |v| {
                    prop_assert!(v.len() < 5, "got length {}", v.len());
                    Ok(())
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("falsified"), "{msg}");
        assert!(msg.contains("got length 5"), "shrunk to exactly 5: {msg}");
        assert!(msg.contains("0,\n"), "elements zeroed: {msg}");
        assert!(msg.contains("PSGRAPH_PROP_SEED="), "replay line: {msg}");
    }

    #[test]
    fn shrinking_lowers_scalar_values() {
        let result = panic::catch_unwind(|| {
            check_with(
                "no_big_numbers",
                &Config::with_cases(200),
                |src| src.u64_range(0, 100_000),
                |&n| {
                    prop_assert!(n < 777, "saw {}", n);
                    Ok(())
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("saw 777"), "minimal failing value is 777: {msg}");
    }

    #[test]
    fn panics_inside_properties_are_caught_and_shrunk() {
        let result = panic::catch_unwind(|| {
            check_with(
                "panicky",
                &Config::with_cases(100),
                |src| src.u64_range(0, 1000),
                |&n| {
                    assert!(n < 900, "panic at {n}");
                    Ok(())
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("panic at 900"), "{msg}");
    }

    #[test]
    fn replay_reproduces_live_generation() {
        let mut live = Source::live(99);
        let v1: Vec<u64> = (0..20).map(|_| live.choice(50)).collect();
        let mut replayed = Source::replay(live.record().to_vec());
        let v2: Vec<u64> = (0..20).map(|_| replayed.choice(50)).collect();
        assert_eq!(v1, v2);
    }

    #[test]
    fn exhausted_replay_yields_zeros() {
        let mut src = Source::replay(vec![7]);
        assert_eq!(src.choice(10), 7);
        assert_eq!(src.choice(10), 0);
        assert_eq!(src.bool(), false);
    }

    #[test]
    fn gen_combinators_compose() {
        let g = Gen::new(|s: &mut Source| s.u64_range(1, 10))
            .map(|n| n * 2)
            .vec(1, 5)
            .zip(Gen::constant("tag"));
        let mut src = Source::live(5);
        let (v, tag) = g.generate(&mut src);
        assert!(!v.is_empty() && v.len() < 5);
        assert!(v.iter().all(|&x| x % 2 == 0 && (2..20).contains(&x)));
        assert_eq!(tag, "tag");
    }

    #[test]
    fn and_then_sees_prior_value() {
        // A dependent pair (n, k) with k < n — the arb_graph pattern.
        let g = Gen::new(|s: &mut Source| s.u64_range(1, 100))
            .and_then(|n, s| (n, s.u64_range(0, n)));
        let mut src = Source::live(8);
        for _ in 0..100 {
            let (n, k) = g.generate(&mut src);
            assert!(k < n);
        }
    }

    #[test]
    fn f64_helpers_cover_ranges() {
        let mut src = Source::live(3);
        for _ in 0..1000 {
            let u = src.f64_unit();
            assert!((0.0..1.0).contains(&u));
            let r = src.f64_range(-1e6, 1e6);
            assert!((-1e6..1e6).contains(&r));
        }
    }

    #[test]
    fn any_u64_reaches_high_bits() {
        let mut src = Source::live(17);
        assert!((0..100).any(|_| src.any_u64() > u32::MAX as u64));
    }
}
