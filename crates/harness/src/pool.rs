//! Hermetic work-stealing thread pool (the rayon-shaped piece of the
//! in-tree substrate — zero external crates).
//!
//! Design:
//!
//! * **Fixed worker set.** `Pool::new(n)` spawns `n` OS threads that live
//!   for the pool's lifetime; `Drop` joins them.
//! * **Per-worker LIFO deques + randomized stealing.** A worker pushes
//!   and pops its own deque at the back (LIFO: fresh tasks are
//!   cache-hot); thieves steal from the front (FIFO: the oldest — and
//!   typically largest — task moves). Steal victims are picked starting
//!   from a per-worker random index. Tasks submitted from outside the
//!   pool land in a shared injector queue.
//! * **Structured fork/join.** [`Pool::scope`] gives out a [`Scope`]
//!   whose `spawn` accepts closures borrowing the caller's stack
//!   (`'scope` lifetime, rayon-style). `scope` does not return until
//!   every spawned task — including nested spawns — has finished, even
//!   if the scope body or a task panics, which is exactly what makes the
//!   borrow-erasing transmute inside sound.
//! * **Panic propagation.** A panicking task is caught on the worker;
//!   the first panic payload is stashed in the scope and re-raised on
//!   the caller's thread by `resume_unwind` after the join. Workers
//!   never die.
//! * **Deterministic reduction rule.** Parallel results are only ever
//!   combined in *canonical partition order*: [`Pool::map`] returns
//!   results indexed by input position and [`Pool::fold_in_order`]
//!   folds them left-to-right by index. No reduction ever depends on
//!   completion order, so outputs are bit-identical for any thread
//!   count and any steal schedule.
//! * **Nested waiting.** A worker that blocks in `scope` *helps*: it
//!   executes queued tasks while waiting, so nested scopes cannot
//!   deadlock even on a 1-thread pool. External (non-worker) callers
//!   park on a condvar instead — `POOL_THREADS=1` therefore means the
//!   algorithm work genuinely runs on one thread.
//! * **Schedule perturbation.** `PSGRAPH_POOL_PERTURB=<seed>` (or
//!   [`Pool::with_perturb`]) arms a replayable debug mode that injects
//!   seeded yields before task execution and biases steal-victim
//!   selection, shaking out ordering assumptions without changing any
//!   result (see the determinism suite).
//!
//! The global pool ([`Pool::global`]) is sized by `POOL_THREADS`, else
//! `max(available_parallelism, 4)` — oversubscription on small hosts
//! keeps blocking simulation tasks overlapping the way one-thread-per-
//! executor did before this pool existed.

use psgraph_sim::sync::{Condvar, Mutex};
use psgraph_sim::SplitMix64;
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// An erased, queued unit of work.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// How long an idle worker parks before re-checking the queues. The
/// notify path makes this a pure safety net against missed wakeups.
const PARK: Duration = Duration::from_micros(500);

thread_local! {
    /// (pool identity, worker index) when the current thread is a pool
    /// worker; used to route spawns to the worker's own deque and to
    /// decide whether a waiting thread may help execute tasks.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

struct Shared {
    /// Per-worker deques: owner pops the back (LIFO), thieves the front.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Overflow queue for tasks submitted from non-worker threads.
    injector: Mutex<VecDeque<Task>>,
    /// Tasks queued anywhere and not yet started.
    pending: AtomicUsize,
    shutdown: AtomicBool,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    /// Schedule-perturbation seed (debug mode); `None` = off.
    perturb: Option<u64>,
    /// Tasks executed over the pool's lifetime (stats / tests).
    executed: AtomicU64,
}

impl Shared {
    fn id(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// Pop a task: own deque (LIFO), injector, then steal (FIFO) from a
    /// victim picked starting at a seeded random index.
    fn find_task(&self, me: Option<usize>, rng: &mut SplitMix64) -> Option<Task> {
        if let Some(w) = me {
            if let Some(t) = self.deques[w].lock().pop_back() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(t);
            }
        }
        if let Some(t) = self.injector.lock().pop_front() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(t);
        }
        let n = self.deques.len();
        let start = rng.next_below(n as u64) as usize;
        for i in 0..n {
            let v = (start + i) % n;
            if Some(v) == me {
                continue;
            }
            if let Some(t) = self.deques[v].lock().pop_front() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(t);
            }
        }
        None
    }

    /// Queue a task: a worker of *this* pool pushes its own deque; any
    /// other thread goes through the injector. Wakes a parked worker.
    fn push(self: &Arc<Self>, task: Task) {
        match WORKER.get() {
            Some((pid, w)) if pid == self.id() => {
                self.deques[w].lock().push_back(task);
            }
            _ => self.injector.lock().push_back(task),
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        let _g = self.sleep_lock.lock();
        self.sleep_cv.notify_all();
    }

    /// Execute one task, with an optional perturbation yield first.
    fn run(&self, task: Task, rng: &mut SplitMix64) {
        if self.perturb.is_some() && rng.next_below(4) == 0 {
            std::thread::yield_now();
        }
        task();
        self.executed.fetch_add(1, Ordering::Relaxed);
    }
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    WORKER.set(Some((shared.id(), me)));
    // Worker RNG drives steal-victim choice; under perturbation the
    // stream is derived from the replayable seed so a failing schedule
    // can be re-run.
    let seed = shared
        .perturb
        .map_or(0x5371_u64, |s| s ^ 0x9E37_79B9_7F4A_7C15)
        .wrapping_add(me as u64);
    let mut rng = SplitMix64::new(seed);
    loop {
        if let Some(task) = shared.find_task(Some(me), &mut rng) {
            shared.run(task, &mut rng);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let g = shared.sleep_lock.lock();
        if shared.pending.load(Ordering::SeqCst) == 0
            && !shared.shutdown.load(Ordering::Acquire)
        {
            let _ = shared.sleep_cv.wait_timeout(g, PARK);
        }
    }
}

/// Per-scope join state: outstanding task count, first panic payload,
/// and the completion signal external waiters park on.
struct ScopeState {
    outstanding: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            outstanding: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }

    fn complete_one(&self) {
        if self.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = self.done_lock.lock();
            self.done_cv.notify_all();
        }
    }
}

/// Spawn handle passed to [`Pool::scope`] closures. Spawned closures may
/// borrow anything that outlives the `scope` call (`'scope`).
pub struct Scope<'scope> {
    shared: Arc<Shared>,
    state: Arc<ScopeState>,
    /// Invariant in `'scope` (rayon's trick): stops the borrow checker
    /// from shrinking the scope lifetime out from under spawned tasks.
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn `f` into the pool. The closure receives the scope again so
    /// it can spawn nested tasks joined by the same `scope` call.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.outstanding.fetch_add(1, Ordering::SeqCst);
        let shared = Arc::clone(&self.shared);
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let scope = Scope {
                shared: Arc::clone(&shared),
                state: Arc::clone(&state),
                _marker: PhantomData,
            };
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(&scope))) {
                let mut g = state.panic.lock();
                if g.is_none() {
                    *g = Some(p);
                }
            }
            // Completion is signalled last, after any panic is stashed:
            // the joining caller reads `panic` only once this count
            // drains, so the payload is always visible to it.
            state.complete_one();
        });
        // SAFETY: erase 'scope to queue the task. `Pool::scope` joins
        // every task spawned on this state — on the success path, the
        // panic path, and for nested spawns — before returning, so the
        // borrows captured in `f` outlive the task's execution.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task)
        };
        self.shared.push(task);
    }
}

/// The work-stealing pool. See the module docs for the design.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .field("perturb", &self.shared.perturb)
            .finish()
    }
}

impl Pool {
    /// A pool with `threads` workers (clamped to ≥ 1). Reads the
    /// `PSGRAPH_POOL_PERTURB` seed from the environment.
    pub fn new(threads: usize) -> Pool {
        let perturb = std::env::var("PSGRAPH_POOL_PERTURB")
            .ok()
            .and_then(|v| v.parse::<u64>().ok());
        Pool::with_perturb(threads, perturb)
    }

    /// A pool with an explicit perturbation seed (`None` = off).
    pub fn with_perturb(threads: usize, perturb: Option<u64>) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            perturb,
            executed: AtomicU64::new(0),
        });
        let handles = (0..threads)
            .map(|i| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("psgraph-pool-{i}"))
                    .spawn(move || worker_loop(s, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, handles: Mutex::new(handles), threads }
    }

    /// The process-wide pool, sized by `POOL_THREADS` (else
    /// `max(available_parallelism, 4)`).
    pub fn global() -> &'static Arc<Pool> {
        static GLOBAL: OnceLock<Arc<Pool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::env::var("POOL_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(4, |n| n.get()).max(4)
                });
            Arc::new(Pool::new(threads))
        })
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Tasks executed over the pool's lifetime.
    pub fn tasks_executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Structured fork/join: run `f` with a [`Scope`]; every task it
    /// spawns (including nested spawns) completes before `scope`
    /// returns. The first panic — scope body first, else first task —
    /// is re-raised here.
    pub fn scope<'scope, R>(&self, f: impl FnOnce(&Scope<'scope>) -> R) -> R {
        let state = Arc::new(ScopeState::new());
        let scope = Scope {
            shared: Arc::clone(&self.shared),
            state: Arc::clone(&state),
            _marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.join_scope(&state);
        match result {
            Ok(r) => {
                if let Some(p) = state.panic.lock().take() {
                    resume_unwind(p);
                }
                r
            }
            Err(p) => resume_unwind(p),
        }
    }

    /// Wait until the scope's tasks drain. Pool workers help execute
    /// queued tasks while they wait (nested scopes must make progress
    /// even on a 1-thread pool); external threads park.
    fn join_scope(&self, state: &ScopeState) {
        let helper = match WORKER.get() {
            Some((pid, w)) if pid == self.shared.id() => Some(w),
            _ => None,
        };
        if let Some(w) = helper {
            let mut rng = SplitMix64::new(0xA11C_E5ED ^ w as u64);
            while state.outstanding.load(Ordering::SeqCst) != 0 {
                match self.shared.find_task(Some(w), &mut rng) {
                    Some(t) => self.shared.run(t, &mut rng),
                    None => std::thread::yield_now(),
                }
            }
            return;
        }
        loop {
            if state.outstanding.load(Ordering::SeqCst) == 0 {
                return;
            }
            let g = state.done_lock.lock();
            if state.outstanding.load(Ordering::SeqCst) == 0 {
                return;
            }
            let _ = state.done_cv.wait_timeout(g, PARK);
        }
    }

    /// Parallel map with the deterministic reduction rule: `f` runs on
    /// every item concurrently, but the results come back indexed by
    /// input position — combining them in that canonical order makes
    /// every downstream fold independent of the steal schedule.
    ///
    /// Single-threaded pools (and single-item inputs) run inline on the
    /// caller, so `POOL_THREADS=1` is a genuinely serial baseline.
    pub fn map<T, R>(&self, items: Vec<T>, f: impl Fn(T) -> R + Send + Sync) -> Vec<R>
    where
        T: Send,
        R: Send,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        let slots: Vec<Mutex<Option<R>>> =
            (0..items.len()).map(|_| Mutex::new(None)).collect();
        self.scope(|s| {
            for (i, item) in items.into_iter().enumerate() {
                let f = &f;
                let slots = &slots;
                s.spawn(move |_| {
                    *slots[i].lock() = Some(f(item));
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("pool map task lost"))
            .collect()
    }

    /// Parallel map + left fold in canonical index order (the
    /// deterministic-reduction rule as one call).
    pub fn fold_in_order<T, R, A>(
        &self,
        items: Vec<T>,
        f: impl Fn(T) -> R + Send + Sync,
        init: A,
        fold: impl FnMut(A, R) -> A,
    ) -> A
    where
        T: Send,
        R: Send,
    {
        self.map(items, f).into_iter().fold(init, fold)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.sleep_lock.lock();
            self.shared.sleep_cv.notify_all();
        }
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_all_tasks() {
        let pool = Pool::with_perturb(4, None);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn map_preserves_input_order() {
        let pool = Pool::with_perturb(4, None);
        let out = pool.map((0..256u64).collect(), |x| x * 3);
        assert_eq!(out, (0..256u64).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::with_perturb(1, None);
        let out = pool.map(vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        // Inline path: the workers never saw these tasks.
        assert_eq!(pool.tasks_executed(), 0);
    }

    #[test]
    fn nested_scopes_on_one_worker_make_progress() {
        let pool = Pool::with_perturb(1, None);
        let total = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                let total = &total;
                let pool = &pool;
                s.spawn(move |_| {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(move |_| {
                                total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn panic_propagates_to_caller() {
        let pool = Pool::with_perturb(2, None);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| panic!("task panic"));
            });
        }));
        assert!(res.is_err());
        // The pool survives and keeps working.
        assert_eq!(pool.map(vec![1, 2], |x| x), vec![1, 2]);
    }

    #[test]
    fn fold_in_order_is_left_fold_by_index() {
        let pool = Pool::with_perturb(4, None);
        let s = pool.fold_in_order(
            (1..=10u64).collect(),
            |x| x.to_string(),
            String::new(),
            |acc, x| acc + &x,
        );
        assert_eq!(s, "12345678910");
    }
}
