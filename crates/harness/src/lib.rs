//! In-tree correctness substrate for the PSGraph workspace.
//!
//! The workspace builds with **zero external crates** (hermetic build
//! policy — DESIGN.md): this crate supplies the two dev-tools that used
//! to come from the registry.
//!
//! * [`prop`] — a property-testing layer in the proptest/Hypothesis
//!   family: generators draw from a recorded choice sequence, failing
//!   cases shrink by minimizing that sequence, and every failure prints a
//!   seed that replays it (`PSGRAPH_PROP_SEED=<n>`).
//! * [`bench`] — a criterion-style micro-benchmark harness: warmup, N
//!   timed iterations, mean/p50/p95 statistics, and a JSON report per
//!   bench group written under the workspace `results/` directory so
//!   `BENCH_*.json` trajectories accumulate across PRs.
//!
//! Both are deterministic-by-default and safe to run fully offline.

//! * [`pool`] — a hermetic work-stealing thread pool (the rayon
//!   replacement): per-worker LIFO deques with randomized stealing,
//!   `scope`-style structured fork/join with panic propagation, and a
//!   deterministic reduction rule so parallel results are bit-identical
//!   at any thread count.

pub mod bench;
pub mod json;
pub mod pool;
pub mod prop;

pub use bench::{black_box, BenchmarkId, Harness};
pub use pool::{Pool, Scope};
pub use prop::{Config, Gen, Source};
