//! Minimal JSON writer for bench reports (no parser — reports are
//! write-only from this side; analysis tooling reads them with whatever
//! it likes).

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serialize with two-space indentation (reports are diffed by
    /// humans in review, so stable pretty output matters).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    // JSON has no NaN/Inf; null is the conventional spill.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structure() {
        let j = Json::Obj(vec![
            ("name".into(), Json::str("fig6")),
            ("ok".into(), Json::Bool(true)),
            ("mean_ns".into(), Json::Float(1.5)),
            ("samples".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("none".into(), Json::Null),
        ]);
        let s = j.pretty();
        assert!(s.contains("\"name\": \"fig6\""));
        assert!(s.contains("\"samples\": [\n"));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn escapes_strings_and_spills_nonfinite() {
        let j = Json::Obj(vec![
            ("s".into(), Json::str("a\"b\\c\nd")),
            ("inf".into(), Json::Float(f64::INFINITY)),
        ]);
        let s = j.pretty();
        assert!(s.contains("a\\\"b\\\\c\\nd"));
        assert!(s.contains("\"inf\": null"));
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }
}
