//! Property/stress suite for the work-stealing pool: counted tokens are
//! never lost or duplicated under stealing, nested scopes make progress
//! on any pool size, saturated pools shut down cleanly, and worker
//! panics propagate to the caller without deadlocking the pool.

use std::panic;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use psgraph_harness::prop::{check_with, Config};
use psgraph_harness::{prop_assert, prop_assert_eq, Pool};

#[test]
fn counted_tokens_survive_stealing_exactly_once() {
    check_with(
        "counted_tokens_survive_stealing_exactly_once",
        &Config::with_cases(40),
        |src| {
            (
                src.usize_range(1, 8),     // workers
                src.usize_range(1, 300),   // tokens
                src.u64_range(0, 5),       // perturbation seed (0 = off)
            )
        },
        |&(threads, tokens, seed)| {
            let pool = Pool::with_perturb(threads, (seed != 0).then_some(seed));
            let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
            pool.scope(|scope| {
                for t in 0..tokens {
                    let seen = &seen;
                    scope.spawn(move |_| seen.lock().unwrap().push(t));
                }
            });
            let mut got = seen.into_inner().unwrap();
            got.sort_unstable();
            let want: Vec<usize> = (0..tokens).collect();
            prop_assert_eq!(got, want); // no loss, no duplication
            Ok(())
        },
    );
}

#[test]
fn nested_scopes_fan_out_exactly_once() {
    check_with(
        "nested_scopes_fan_out_exactly_once",
        &Config::with_cases(25),
        |src| {
            (
                src.usize_range(1, 6),   // workers
                src.usize_range(1, 12),  // outer tasks
                src.usize_range(1, 12),  // inner tasks per outer
            )
        },
        |&(threads, outer, inner)| {
            let pool = Pool::with_perturb(threads, Some(99));
            let hits = AtomicU64::new(0);
            pool.scope(|scope| {
                for _ in 0..outer {
                    let hits = &hits;
                    scope.spawn(move |s| {
                        // A nested structured scope run from inside a task:
                        // must complete even on a 1-worker pool (the worker
                        // helps while waiting).
                        s.spawn(move |_| {
                            for _ in 0..inner {
                                hits.fetch_add(1, Ordering::Relaxed);
                            }
                        });
                    });
                }
            });
            prop_assert_eq!(hits.into_inner(), (outer * inner) as u64);
            Ok(())
        },
    );
}

#[test]
fn saturated_pool_shuts_down_cleanly() {
    // Fill the deques well past the worker count, then drop the pool the
    // moment the scope joins. Every task must have run and the drop must
    // not hang (joining stuck workers would).
    for round in 0..10u64 {
        let pool = Pool::with_perturb(4, Some(round));
        let count = Arc::new(AtomicU64::new(0));
        pool.scope(|scope| {
            for _ in 0..2_000 {
                let count = Arc::clone(&count);
                scope.spawn(move |_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 2_000);
        drop(pool);
    }
}

#[test]
fn worker_panic_propagates_without_deadlock() {
    let pool = Pool::with_perturb(3, None);
    let survivors = Arc::new(AtomicU64::new(0));
    let result = {
        let survivors = Arc::clone(&survivors);
        panic::catch_unwind(panic::AssertUnwindSafe(|| {
            pool.scope(|scope| {
                for t in 0..50 {
                    let survivors = Arc::clone(&survivors);
                    scope.spawn(move |_| {
                        if t == 17 {
                            panic!("worker task detonated");
                        }
                        survivors.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }))
    };
    let err = result.expect_err("the task panic must reach the scope caller");
    let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
    assert!(msg.contains("detonated"), "unexpected panic payload: {msg:?}");
    // The pool is still alive and usable after the panic.
    let after: u64 = pool.map((0..32u64).collect::<Vec<_>>(), |x| x * 2).into_iter().sum();
    assert_eq!(after, 2 * (0..32u64).sum::<u64>());
    assert!(survivors.load(Ordering::Relaxed) <= 49);
}

#[test]
fn map_is_order_preserving_under_perturbation() {
    check_with(
        "map_is_order_preserving_under_perturbation",
        &Config::with_cases(30),
        |src| {
            (
                src.usize_range(1, 8),
                src.vec_with(0, 200, |s| s.u64_range(0, 1_000_000)),
                src.u64_range(1, u64::MAX),
            )
        },
        |(threads, items, seed)| {
            let pool = Pool::with_perturb(*threads, Some(*seed));
            let out = pool.map(items.clone(), |x| x.wrapping_mul(3));
            let want: Vec<u64> = items.iter().map(|x| x.wrapping_mul(3)).collect();
            prop_assert!(out == want, "map reordered results");
            Ok(())
        },
    );
}
