//! LINE vertex embeddings (§IV-D): train second-order LINE with the
//! column-partitioned embedding/context matrices on the parameter server,
//! then use cosine similarity in the embedding space for a
//! "people you may know" style nearest-neighbor lookup.
//!
//! ```text
//! cargo run --release --example embeddings
//! ```

use psgraph::core::algos::{Line, LineConfig, LineOrder};
use psgraph::core::runner::distribute_edges;
use psgraph::core::PsGraphContext;
use psgraph::graph::gen;

fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| *x as f64 * *y as f64).sum();
    let na: f64 = a.iter().map(|x| (*x as f64).powi(2)).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| (*x as f64).powi(2)).sum::<f64>().sqrt();
    dot / (na * nb + 1e-12)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = PsGraphContext::local();

    // A clustered graph: embeddings should place cluster-mates together.
    let s = gen::sbm2(300, 12.0, 0.5, 4, 0.5, 77);
    let edges = distribute_edges(&ctx, &s.graph, 8)?;

    let out = Line::new(LineConfig {
        dim: 32,
        order: LineOrder::First,
        epochs: 10,
        lr: 0.08,
        ..Default::default()
    })
    .run(&ctx, &edges, 300)?;
    println!(
        "trained LINE(dim=32) for {} epochs; loss {:.3} → {:.3}; {}",
        out.loss_per_epoch.len(),
        out.loss_per_epoch.first().unwrap(),
        out.loss_per_epoch.last().unwrap(),
        out.stats
    );

    // Nearest neighbors of a few query vertices.
    for &query in &[0u64, 150, 299] {
        let qe = &out.embeddings[query as usize];
        let mut sims: Vec<(u64, f64)> = (0..300u64)
            .filter(|&v| v != query)
            .map(|v| (v, cosine(qe, &out.embeddings[v as usize])))
            .collect();
        sims.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let side = |v: u64| if v < 150 { "A" } else { "B" };
        print!("closest to {query} (cluster {}): ", side(query));
        for (v, s) in sims.iter().take(5) {
            print!("{v}[{}] {s:.2}  ", side(*v));
        }
        println!();
    }

    // Quantitative check: average within-cluster similarity must beat
    // cross-cluster similarity.
    let (mut within, mut cross, mut wn, mut cn) = (0.0, 0.0, 0usize, 0usize);
    for a in (0..300).step_by(7) {
        for b in (0..300).step_by(11) {
            if a == b {
                continue;
            }
            let sim = cosine(&out.embeddings[a], &out.embeddings[b]);
            if (a < 150) == (b < 150) {
                within += sim;
                wn += 1;
            } else {
                cross += sim;
                cn += 1;
            }
        }
    }
    println!(
        "avg cosine: within-cluster {:.3}, cross-cluster {:.3}",
        within / wn as f64,
        cross / cn as f64
    );
    assert!(within / wn as f64 > cross / cn as f64);
    println!("simulated cluster time: {}", ctx.now());
    Ok(())
}
