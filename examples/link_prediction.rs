//! Link prediction with common neighbors — paper §IV-B: "Common neighbor
//! helps measure the closeness of two vertices and is used for link
//! prediction."
//!
//! We hide a slice of edges from a social graph, score candidate pairs by
//! their common-neighbor count (served from neighbor tables on the PS),
//! and check how many hidden friendships the top-scored pairs recover.
//!
//! ```text
//! cargo run --release --example link_prediction
//! ```

use psgraph::core::algos::CommonNeighbor;
use psgraph::core::runner::distribute_edges;
use psgraph::core::PsGraphContext;
use psgraph::graph::EdgeList;
use psgraph::sim::FxHashSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = PsGraphContext::local();

    // A locally-clustered social graph: a ring lattice (everyone knows
    // their 4 nearest neighbors on each side) plus random long-range
    // acquaintances — the classic small-world structure where common
    // neighbors predict missing short-range links.
    let n = 600u64;
    let mut canon: Vec<(u64, u64)> = Vec::new();
    for v in 0..n {
        for d in 1..=4u64 {
            let u = (v + d) % n;
            canon.push((v.min(u), v.max(u)));
        }
    }
    let mut rng0 = psgraph::sim::SplitMix64::new(99);
    for _ in 0..n / 2 {
        let a = rng0.next_below(n);
        let b = rng0.next_below(n);
        if a != b {
            canon.push((a.min(b), a.max(b)));
        }
    }
    canon.sort_unstable();
    canon.dedup();

    // Hide every 10th friendship; these are what we try to predict.
    let hidden: FxHashSet<(u64, u64)> =
        canon.iter().copied().enumerate().filter(|(i, _)| i % 10 == 0).map(|(_, e)| e).collect();
    let visible: Vec<(u64, u64)> =
        canon.iter().copied().filter(|e| !hidden.contains(e)).collect();
    let graph = EdgeList::new(n, visible);
    println!(
        "visible graph: {} edges; hidden: {} edges to predict",
        graph.num_edges(),
        hidden.len()
    );

    // Candidate pairs: all 2-hop pairs would be the real workload; sample
    // non-edges + hidden edges to keep the demo fast.
    let existing: FxHashSet<(u64, u64)> = graph.edges().iter().copied().collect();
    let mut rng = psgraph::sim::SplitMix64::new(5);
    let mut candidates: Vec<(u64, u64)> = hidden.iter().copied().collect();
    while candidates.len() < hidden.len() * 20 {
        let a = rng.next_below(n);
        let b = rng.next_below(n);
        let pair = (a.min(b), a.max(b));
        if a != b && !existing.contains(&pair) {
            candidates.push(pair);
        }
    }

    // Score every candidate by |N(a) ∩ N(b)| via the PS neighbor tables.
    let edges = distribute_edges(&ctx, &graph, 8)?;
    let pairs = distribute_edges(&ctx, &EdgeList::new(n, candidates), 8)?;
    let out = CommonNeighbor::default().run_for_pairs(&ctx, &edges, &pairs, n)?;

    // Take the top |hidden| predictions and measure precision.
    let mut scored = out.counts;
    scored.sort_by_key(|&(_, _, c)| std::cmp::Reverse(c));
    let k = hidden.len();
    let hits = scored
        .iter()
        .take(k)
        .filter(|&&(a, b, _)| hidden.contains(&(a.min(b), a.max(b))))
        .count();
    println!(
        "precision@{k}: {:.1}% ({} of the top-{k} scored pairs were hidden friendships)",
        100.0 * hits as f64 / k as f64,
        hits
    );
    println!("best predictions:");
    for &(a, b, c) in scored.iter().take(5) {
        let marker = if hidden.contains(&(a.min(b), a.max(b))) { "HIT " } else { "    " };
        println!("  {marker}{a:>4} — {b:<4}  {c} common friends");
    }
    println!("simulated cluster time: {}", ctx.now());

    // Random guessing over the candidate pool would score ~5%; common
    // neighbors should do far better on a clustered graph.
    assert!(hits as f64 / k as f64 > 0.2, "CN should beat random guessing");
    Ok(())
}
