//! Extending PSGraph: user-defined server-side operators (psFunc, §III-A)
//! and the Listing-1 job API.
//!
//! This example implements **degree centrality normalization** as a custom
//! algorithm: compute out-degrees into a PS vector, then run a
//! user-defined psFunc that rescales the whole vector *on the servers* —
//! no degree ever crosses the network after the initial push. The job is
//! then driven end-to-end through `run_job` (load → transform → save),
//! and the same adjacency is mirrored into the memory-dense CSR store.
//!
//! ```text
//! cargo run --release --example custom_operator
//! ```

use std::sync::Arc;

use psgraph::core::runner;
use psgraph::core::{run_job, GraphAlgorithm, PsGraphContext};
use psgraph::dataflow::Rdd;
use psgraph::graph::{gen, io};
use psgraph::ps::{CsrHandle, PartitionViewMut, Partitioner, RecoveryMode, VectorHandle};

/// A user-defined algorithm: normalized degree centrality.
struct DegreeCentrality;

impl GraphAlgorithm for DegreeCentrality {
    fn name(&self) -> &'static str {
        "degree_centrality"
    }

    fn transform(
        &self,
        ctx: &Arc<PsGraphContext>,
        edges: &Rdd<(u64, u64)>,
        num_vertices: u64,
    ) -> psgraph::core::error::Result<Vec<(u64, f64)>> {
        // Executors count their local out-degrees and push increments.
        let degrees = VectorHandle::<f64>::create(
            ctx.ps(), "deg", num_vertices, Partitioner::Range, RecoveryMode::Inconsistent,
        )?;
        let deg_ref = &degrees;
        ctx.cluster()
            .run_stage(edges.num_partitions(), |p, exec| {
                let part = edges.partition(p)?;
                let mut local: std::collections::BTreeMap<u64, f64> = Default::default();
                for &(s, _) in part.iter() {
                    *local.entry(s).or_default() += 1.0;
                }
                let (idx, vals): (Vec<u64>, Vec<f64>) = local.into_iter().unzip();
                if !idx.is_empty() {
                    deg_ref
                        .push_add(exec.clock(), &idx, &vals)
                        .map_err(|e| psgraph::dataflow::DataflowError::Other(e.to_string()))?;
                }
                Ok(())
            })
            .map_err(psgraph::core::CoreError::from)?;

        // Custom psFunc #1: find the maximum degree, server-side.
        let driver = ctx.cluster().driver();
        let max_deg = degrees.ps_func(
            driver,
            16,
            8,
            |view| match view {
                PartitionViewMut::Dense { data, .. } => {
                    data.iter().copied().fold(0.0f64, f64::max)
                }
                PartitionViewMut::Sparse(map) => {
                    map.values().copied().fold(0.0f64, f64::max)
                }
            },
            f64::max,
        )?;

        // Custom psFunc #2: normalize in place (built-in `scale`).
        if max_deg > 0.0 {
            degrees.scale(driver, 1.0 / max_deg)?;
        }

        let out = degrees.pull_all(driver)?;
        ctx.ps().unregister("deg");
        Ok(out.into_iter().enumerate().map(|(v, c)| (v as u64, c)).collect())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = PsGraphContext::local();
    let g = gen::rmat(20_000, 150_000, gen::RmatParams::default(), 12);
    io::write_binary(ctx.dfs(), "/in/graph.bin", &g, ctx.cluster().driver())?;

    // Listing-1 flow with the custom algorithm.
    let out_path = run_job(&ctx, &DegreeCentrality, "/in/graph.bin", g.num_vertices())?;
    let centrality = runner::load_vertex_values(&ctx, &out_path)?;
    let mut top = centrality.clone();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("degree centrality written to {out_path}; top-5:");
    for (v, c) in top.iter().take(5) {
        println!("  vertex {v:>6}  centrality {c:.4}");
    }
    assert!((top[0].1 - 1.0).abs() < 1e-12, "max normalizes to 1.0");

    // Bonus: snapshot the adjacency into the dense CSR store and compare
    // footprints with the mutable neighbor table.
    let tables: Vec<(u64, Vec<u64>)> = g.neighbor_tables().into_iter().collect();
    let csr = CsrHandle::build(
        ctx.ps(), "adj.csr", g.num_vertices(), &tables, ctx.cluster().driver(),
        RecoveryMode::Inconsistent,
    )?;
    println!(
        "CSR snapshot: {} edges in {} KB on the servers",
        csr.num_edges()?,
        csr.resident_bytes()? / 1024
    );
    println!("total simulated cluster time: {}", ctx.now());
    Ok(())
}
