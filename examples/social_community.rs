//! Community detection on a social graph — the WeChat-style use case the
//! paper's §IV-C motivates. Runs Fast Unfolding (Louvain) and Label
//! Propagation on a planted-partition graph and compares how well each
//! recovers the planted communities.
//!
//! ```text
//! cargo run --release --example social_community
//! ```

use psgraph::core::algos::{FastUnfolding, LabelPropagation};
use psgraph::core::runner::distribute_edges;
use psgraph::core::PsGraphContext;
use psgraph::graph::metrics;
use psgraph::graph::{gen, WeightedEdgeList};
use psgraph::sim::FxHashMap;

/// Agreement between two community assignments: fraction of same-half
/// vertex pairs that land in the same detected community.
fn coherence(assign: &[u64], half: usize) -> f64 {
    let mut agree = 0usize;
    let mut total = 0usize;
    for block in [0..half, half..assign.len()] {
        for a in block.clone() {
            for b in block.clone() {
                if a < b {
                    total += 1;
                    if assign[a] == assign[b] {
                        agree += 1;
                    }
                }
            }
        }
    }
    agree as f64 / total as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = PsGraphContext::local();

    // Two planted communities with some cross-links.
    let s = gen::sbm2(400, 12.0, 1.0, 4, 0.5, 2024);
    // Deduplicate to one direction per undirected edge.
    let mut canon: Vec<(u64, u64)> = s
        .graph
        .edges()
        .iter()
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .collect();
    canon.sort_unstable();
    canon.dedup();
    let graph = psgraph::graph::EdgeList::new(400, canon.clone());
    println!(
        "social graph: {} members, {} friendships",
        graph.num_vertices(),
        graph.num_edges()
    );

    let edges = distribute_edges(&ctx, &graph, 8)?;

    // Fast Unfolding: vertex2com + com2weight live on the PS (§IV-C).
    let fu = FastUnfolding::default().run_unweighted(&ctx, &edges, 400)?;
    let communities: FxHashMap<u64, usize> =
        fu.communities.iter().fold(FxHashMap::default(), |mut m, &c| {
            *m.entry(c).or_default() += 1;
            m
        });
    println!(
        "fast unfolding: {} communities, modularity {:.3}, planted-pair coherence {:.1}%",
        communities.len(),
        fu.modularity,
        100.0 * coherence(&fu.communities, 200)
    );

    // Label propagation on the same graph.
    let lp = LabelPropagation::default().run(&ctx, &edges, 400)?;
    println!(
        "label propagation: coherence {:.1}% in {}",
        100.0 * coherence(&lp.labels, 200),
        lp.stats.elapsed
    );

    // Reference modularity of the PLANTED partition for context.
    let w = WeightedEdgeList::new(400, canon.iter().map(|&(a, b)| (a, b, 1.0)).collect());
    let truth: Vec<u64> = s.labels.iter().map(|&l| l as u64).collect();
    println!(
        "planted partition modularity (reference): {:.3}",
        metrics::modularity(&w, &truth)
    );
    println!("total simulated cluster time: {}", ctx.now());
    Ok(())
}
