//! Quickstart: the paper's Listing 1 in Rust.
//!
//! Stand up a PSGraph deployment (simulated Spark cluster + parameter
//! servers + mini-HDFS), load a graph from the DFS, run PageRank, and
//! save the ranks back — the full `GraphRunner` flow.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use psgraph::core::algos::PageRank;
use psgraph::core::runner;
use psgraph::core::{PsGraphConfig, PsGraphContext};
use psgraph::graph::{gen, io};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Spin up the deployment: 4 executors, 2 parameter servers, DFS.
    //    (`PsGraphConfig::sized` picks executor/server counts and memory.)
    let ctx = PsGraphContext::new(PsGraphConfig::default());
    println!("deployment: {ctx:?}");

    // 2. Put a graph on the DFS (in production this is the existing HDFS
    //    dataset; here we generate a power-law graph and write it).
    let graph = gen::rmat(50_000, 400_000, gen::RmatParams::default(), 7);
    io::write_binary(ctx.dfs(), "/data/social.bin", &graph, ctx.cluster().driver())?;
    println!(
        "wrote /data/social.bin: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 3. GraphIO.load — executors read their input splits into an edge RDD.
    let edges = runner::load_edges(&ctx, "/data/social.bin")?;
    println!("loaded edge RDD with {} partitions", edges.num_partitions());

    // 4. algo.transform — delta PageRank with ranks/Δranks on the PS.
    let out = PageRank { max_iterations: 30, delta_threshold: 1e-6, ..Default::default() }
        .run(&ctx, &edges, graph.num_vertices())?;
    println!("pagerank: {}", out.stats);

    // 5. GraphIO.save — persist (vertex, rank) pairs to the DFS.
    let ranked: Vec<(u64, f64)> = out
        .ranks
        .iter()
        .enumerate()
        .map(|(v, &r)| (v as u64, r))
        .collect();
    runner::save_vertex_values(&ctx, "/out/pagerank.bin", &ranked)?;

    // Show the most important vertices.
    let mut top = ranked;
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top-5 vertices by rank:");
    for (v, r) in top.iter().take(5) {
        println!("  vertex {v:>6}  rank {r:.4}");
    }
    println!(
        "total simulated cluster time: {} (wall clock is your machine)",
        ctx.now()
    );
    Ok(())
}
