//! GraphSage node classification — the WeChat Pay application behind
//! Table I (§V-B3): classify accounts from their features *and* their
//! transaction neighborhood, trained end-to-end on PSGraph with features,
//! adjacency, and weights on the parameter server and Adam running
//! server-side as a psFunc.
//!
//! ```text
//! cargo run --release --example payment_gnn
//! ```

use std::sync::Arc;

use psgraph::core::algos::{GraphSage, GraphSageConfig};
use psgraph::core::runner::distribute_edges;
use psgraph::core::PsGraphContext;
use psgraph::graph::gen;
use psgraph::tensor::{nn, Graph, Linear, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = PsGraphContext::local();

    // Accounts in two behavioural groups; features are noisy enough that
    // the neighborhood matters.
    let s = gen::sbm2(1_000, 10.0, 0.8, 16, 3.0, 31);
    let edges = distribute_edges(&ctx, &s.graph, 8)?;
    let features = Arc::new(s.features.clone());
    let labels = Arc::new(s.labels.clone());

    // Feature-only baseline (logistic regression on the raw features),
    // to show what the graph structure adds.
    let baseline = feature_only_accuracy(&s.features, &s.labels);
    println!("feature-only logistic baseline: {:.1}%", 100.0 * baseline);

    let cfg = GraphSageConfig { feat_dim: 16, epochs: 4, ..Default::default() };
    let out = GraphSage::new(cfg).run(&ctx, &edges, &features, &labels, 1_000)?;
    println!(
        "graphsage: preprocess {}, {} epochs at avg {} (simulated)",
        out.preprocess_time,
        out.epoch_times.len(),
        psgraph::sim::SimTime::from_nanos(
            out.epoch_times.iter().map(|t| t.as_nanos()).sum::<u64>()
                / out.epoch_times.len() as u64
        ),
    );
    println!(
        "graphsage accuracy: train {:.1}%, test {:.1}%  (loss {:.3} → {:.3})",
        100.0 * out.train_accuracy,
        100.0 * out.test_accuracy,
        out.loss_per_epoch.first().unwrap(),
        out.loss_per_epoch.last().unwrap()
    );
    assert!(
        out.test_accuracy > baseline,
        "the 2-hop neighborhood should beat features alone"
    );
    println!("simulated cluster time: {}", ctx.now());
    Ok(())
}

/// Train a plain logistic classifier on the raw features (no graph).
fn feature_only_accuracy(features: &[Vec<f32>], labels: &[usize]) -> f64 {
    let n = features.len();
    let dim = features[0].len();
    let split = n * 7 / 10;
    let x_train = Tensor::from_vec(
        split,
        dim,
        features[..split].iter().flatten().copied().collect(),
    );
    let y_train: Vec<usize> = labels[..split].to_vec();
    let mut layer = Linear::new(dim, 2, 3);
    for _ in 0..150 {
        let mut g = Graph::new();
        let x = g.input(x_train.clone());
        let (logits, w, b) = layer.forward(&mut g, x);
        let loss = g.softmax_cross_entropy(logits, &y_train);
        g.backward(loss);
        let (gw, gb) = (g.grad(w).unwrap().clone(), g.grad(b).unwrap().clone());
        for (p, gi) in layer.weight.data_mut().iter_mut().zip(gw.data()) {
            *p -= 0.5 * gi;
        }
        for (p, gi) in layer.bias.data_mut().iter_mut().zip(gb.data()) {
            *p -= 0.5 * gi;
        }
    }
    let x_test = Tensor::from_vec(
        n - split,
        dim,
        features[split..].iter().flatten().copied().collect(),
    );
    let mut g = Graph::new();
    let x = g.input(x_test);
    let (logits, _, _) = layer.forward(&mut g, x);
    nn::accuracy(g.value(logits), &labels[split..])
}
