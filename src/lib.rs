//! PSGraph — a reproduction of "PSGraph: How Tencent trains extremely
//! large-scale graphs with Spark?" (ICDE 2020) as a pure-Rust, simulated
//! cluster.
//!
//! This facade crate re-exports every subsystem so examples and downstream
//! users can depend on a single crate:
//!
//! * [`sim`] — simulated time, cost model, memory budgets, failure injection.
//! * [`net`] — the in-process RPC / message bus between logical nodes.
//! * [`dfs`] — a miniature HDFS (blocks, replication, checksums).
//! * [`dataflow`] — a Spark-like engine (RDDs, shuffle, stages, lineage).
//! * [`ps`] — the distributed parameter server (the paper's centerpiece).
//! * [`tensor`] — a small autograd / neural-network library ("PyTorch").
//! * [`graph`] — graph structures, generators, and dataset presets.
//! * [`core`] — PSGraph itself: `PSContext`, PS agents, the Listing-1
//!   job API, and the algorithms (PageRank, K-Core, Common Neighbor,
//!   Triangle Count, Fast Unfolding, Label Propagation, Connected
//!   Components, LINE, GraphSage).
//! * [`graphx`] — the join/shuffle-based GraphX baseline.
//! * [`euler`] — the Euler baseline for the GraphSage comparison.
//! * [`serve`] — online query serving over snapshotted PS state
//!   (replicated read shards, hot-key cache, batching, tail-latency SLOs).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.
//!
//! ```
//! use psgraph::core::{algos::PageRank, runner, PsGraphContext};
//! use psgraph::graph::gen;
//!
//! // A full deployment: simulated Spark executors + parameter servers + DFS.
//! let ctx = PsGraphContext::local();
//! let graph = gen::rmat(1_000, 8_000, gen::RmatParams::default(), 7);
//! let edges = runner::distribute_edges(&ctx, &graph, 8).unwrap();
//! let out = PageRank { max_iterations: 10, ..Default::default() }
//!     .run(&ctx, &edges, graph.num_vertices())
//!     .unwrap();
//! assert_eq!(out.ranks.len(), 1_000);
//! assert!(ctx.now() > psgraph::sim::SimTime::ZERO); // simulated time elapsed
//! ```

pub use psgraph_core as core;
pub use psgraph_dataflow as dataflow;
pub use psgraph_dfs as dfs;
pub use psgraph_euler as euler;
pub use psgraph_graph as graph;
pub use psgraph_graphx as graphx;
pub use psgraph_net as net;
pub use psgraph_ps as ps;
pub use psgraph_serve as serve;
pub use psgraph_sim as sim;
pub use psgraph_tensor as tensor;
