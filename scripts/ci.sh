#!/usr/bin/env bash
# Hermetic CI: the workspace must build and test fully offline with an
# empty registry cache (path dependencies only — see DESIGN.md "Hermetic
# build policy"). Fails on any warning in the harness crate.
set -euo pipefail
cd "$(dirname "$0")/.."

# Hermetic guard: the lockfile must contain path dependencies only — a
# `source = ...` line means something resolved from a registry or git.
if grep -q '^source = ' Cargo.lock; then
    echo "ci: non-path dependency resolved in Cargo.lock" >&2
    exit 1
fi

# The harness is the substrate every test stands on (the work-stealing
# pool lives there) — hold it to warnings-as-errors. Same bar for the
# serving tier and the query engine (newest subsystems).
RUSTFLAGS="-D warnings" cargo build --offline -p psgraph-harness --all-targets
RUSTFLAGS="-D warnings" cargo build --offline -p psgraph-query --all-targets
RUSTFLAGS="-D warnings" cargo build --offline -p psgraph-serve --all-targets

cargo build --release --offline --workspace
# Release mode: the fig6/table emergence tests simulate whole cluster
# runs and are debug-prohibitive (>10 min); in release the full suite
# finishes in a few minutes.
#
# The full suite runs twice — genuinely serial (POOL_THREADS=1) and on
# every host core — and the normalized outputs must be identical: the
# deterministic-reduction rule says no result may depend on the pool
# size. Timing lines are stripped before the diff.
normalize() {
    sed -E -e 's/finished in [0-9.]+s//g' -e 's/^(test .*) \.\.\. .*/\1/' "$1"
}
POOL_THREADS=1 cargo test -q --offline --workspace --release >/tmp/ci-tests-t1.log 2>&1 \
    || { cat /tmp/ci-tests-t1.log; exit 1; }
POOL_THREADS="$(nproc)" cargo test -q --offline --workspace --release >/tmp/ci-tests-tmax.log 2>&1 \
    || { cat /tmp/ci-tests-tmax.log; exit 1; }
if ! diff <(normalize /tmp/ci-tests-t1.log) <(normalize /tmp/ci-tests-tmax.log) >/tmp/ci-tests.diff; then
    echo "ci: test outputs diverge between POOL_THREADS=1 and POOL_THREADS=$(nproc)" >&2
    cat /tmp/ci-tests.diff >&2
    exit 1
fi

# Serve-tier self-healing smoke: a small `repro -- serve` run with the
# mid-run replica kill (monitor-restarted) and delta hot-swap. The binary
# asserts zero wrong/stale answers, a completed rejoin, and a recovered
# p99 — a non-zero exit fails CI.
cargo run --release --offline -p psgraph-bench --bin repro -- serve --scale 0.02 --queries 5000

# Query-plan smoke: a mixed workload of all legacy shapes plus compound
# filter → expand → score → top-k plans, every answer checked against the
# single-node interpreter (the binary asserts 0 wrong), plus the pushdown
# ablation (cost-based pushdown must move strictly fewer shard→frontend
# bytes than frontend-only execution). Runs serial and on every host
# core; the deterministic-reduction rule says the normalized outputs must
# be identical.
POOL_THREADS=1 cargo run --release --offline -p psgraph-bench --bin repro -- \
    query --scale 0.02 --queries 4000 >/tmp/ci-query-t1.log \
    || { cat /tmp/ci-query-t1.log; exit 1; }
POOL_THREADS="$(nproc)" cargo run --release --offline -p psgraph-bench --bin repro -- \
    query --scale 0.02 --queries 4000 >/tmp/ci-query-tmax.log \
    || { cat /tmp/ci-query-tmax.log; exit 1; }
if ! diff <(sed '/wall clock/d' /tmp/ci-query-t1.log) <(sed '/wall clock/d' /tmp/ci-query-tmax.log) >/tmp/ci-query.diff; then
    echo "ci: query outputs diverge between POOL_THREADS=1 and POOL_THREADS=$(nproc)" >&2
    cat /tmp/ci-query.diff >&2
    exit 1
fi

# Streaming smoke: drift-RMAT edge events through micro-batch ingestion,
# incremental PageRank/CC maintenance, and delta hot-swaps into the live
# tier, at one ingestor and at four owner-keyed shards. The binary
# asserts zero wrong answers, L∞ ≤ 1e-6 vs a full recompute,
# reference-equal components, bounded freshness lag, and (at --shards 4)
# a final PS state digest bit-identical to a single-ingestor reference
# run. The two outputs must agree line-for-line — digest, freshness,
# swap/batch counts included — once wall-clock rows are stripped
# (events/s and swap cost legitimately differ across shard counts; the
# shard-count row is stripped too since it names the sweep point).
cargo run --release --offline -p psgraph-bench --bin repro -- \
    stream --scale 0.02 --events 6000 --shards 1 >/tmp/ci-stream-s1.log \
    || { cat /tmp/ci-stream-s1.log; exit 1; }
cargo run --release --offline -p psgraph-bench --bin repro -- \
    stream --scale 0.02 --events 6000 --shards 4 >/tmp/ci-stream-s4.log \
    || { cat /tmp/ci-stream-s4.log; exit 1; }
strip_wall() {
    sed -E -e '/wall clock/d' -e '/events\/s/d' -e '/swap cost/d' -e '/ingestor shards/d' "$1"
}
if ! diff <(strip_wall /tmp/ci-stream-s1.log) <(strip_wall /tmp/ci-stream-s4.log) >/tmp/ci-stream.diff; then
    echo "ci: stream outputs diverge between --shards 1 and --shards 4" >&2
    cat /tmp/ci-stream.diff >&2
    exit 1
fi
cat /tmp/ci-stream-s4.log

# Chaos smoke: the fault-injection soak at 3 pinned schedule seeds
# (0xC0FFEE..+2) — message loss/duplication/delay on every RPC, PS
# crash-recovery at arbitrary points, replica kills, DFS block
# corruption. The binary asserts zero wrong answers, bounded freshness,
# and a final PS state bit-identical to the fault-free reference; on any
# failure it prints the failing seed and the exact single-seed replay
# command (`repro -- chaos --seed S ...`).
cargo run --release --offline -p psgraph-bench --bin repro -- chaos --scale 0.02 --seeds 3 --events 3000

# Schedule-perturbation sweep: rerun both smokes under ten seeded
# steal-schedule perturbations (randomized victim order + injected
# yields). The binaries' internal correctness asserts — zero wrong
# answers, reference-equal results, and (sharded stream) a state digest
# bit-identical to the single-ingestor reference — must hold on every
# schedule: the sharded drain plans batches on the pool, so this is the
# path a steal-order bug would corrupt.
for seed in 1 2 3 4 5 6 7 8 9 10; do
    echo "ci: perturbation seed $seed"
    PSGRAPH_POOL_PERTURB=$seed cargo run --release --offline -p psgraph-bench --bin repro -- \
        serve --scale 0.01 --queries 1500 >/dev/null
    PSGRAPH_POOL_PERTURB=$seed cargo run --release --offline -p psgraph-bench --bin repro -- \
        stream --scale 0.01 --events 2000 --shards 2 >/dev/null
done

echo "ci: OK"
