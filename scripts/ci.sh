#!/usr/bin/env bash
# Hermetic CI: the workspace must build and test fully offline with an
# empty registry cache (path dependencies only — see DESIGN.md "Hermetic
# build policy"). Fails on any warning in the harness crate.
set -euo pipefail
cd "$(dirname "$0")/.."

# The harness is the substrate every test stands on — hold it to
# warnings-as-errors.
RUSTFLAGS="-D warnings" cargo build --offline -p psgraph-harness

cargo build --release --offline --workspace
# Release mode: the fig6/table emergence tests simulate whole cluster
# runs and are debug-prohibitive (>10 min); in release the full suite
# finishes in a few minutes.
cargo test -q --offline --workspace --release

echo "ci: OK"
