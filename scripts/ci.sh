#!/usr/bin/env bash
# Hermetic CI: the workspace must build and test fully offline with an
# empty registry cache (path dependencies only — see DESIGN.md "Hermetic
# build policy"). Fails on any warning in the harness crate.
set -euo pipefail
cd "$(dirname "$0")/.."

# Hermetic guard: the lockfile must contain path dependencies only — a
# `source = ...` line means something resolved from a registry or git.
if grep -q '^source = ' Cargo.lock; then
    echo "ci: non-path dependency resolved in Cargo.lock" >&2
    exit 1
fi

# The harness is the substrate every test stands on — hold it to
# warnings-as-errors. Same bar for the serving tier (newest subsystem).
RUSTFLAGS="-D warnings" cargo build --offline -p psgraph-harness
RUSTFLAGS="-D warnings" cargo build --offline -p psgraph-serve --all-targets

cargo build --release --offline --workspace
# Release mode: the fig6/table emergence tests simulate whole cluster
# runs and are debug-prohibitive (>10 min); in release the full suite
# finishes in a few minutes.
cargo test -q --offline --workspace --release

# Serve-tier self-healing smoke: a small `repro -- serve` run with the
# mid-run replica kill (monitor-restarted) and delta hot-swap. The binary
# asserts zero wrong/stale answers, a completed rejoin, and a recovered
# p99 — a non-zero exit fails CI.
cargo run --release --offline -p psgraph-bench --bin repro -- serve --scale 0.02 --queries 5000

# Streaming smoke: drift-RMAT edge events through micro-batch ingestion,
# incremental PageRank/CC maintenance, and delta hot-swaps into the live
# tier. The binary asserts zero wrong answers, L∞ ≤ 1e-6 vs a full
# recompute, reference-equal components, and bounded freshness lag.
cargo run --release --offline -p psgraph-bench --bin repro -- stream --scale 0.02 --events 6000

echo "ci: OK"
