//! Determinism tests: the simulator is single-seeded and must be fully
//! reproducible — same seed ⇒ bit-identical outputs, regardless of how
//! work is partitioned.

use psgraph::core::algos::PageRank;
use psgraph::core::runner::distribute_edges;
use psgraph::core::PsGraphContext;
use psgraph::graph::gen;

#[test]
fn rmat_same_seed_is_bit_identical() {
    let a = gen::rmat(1 << 10, 4096, Default::default(), 42);
    let b = gen::rmat(1 << 10, 4096, Default::default(), 42);
    assert_eq!(a.num_vertices(), b.num_vertices());
    assert_eq!(a.edges(), b.edges(), "same seed must reproduce the exact edge list");
}

#[test]
fn rmat_different_seeds_differ() {
    let a = gen::rmat(1 << 10, 4096, Default::default(), 42);
    let b = gen::rmat(1 << 10, 4096, Default::default(), 43);
    assert_ne!(a.edges(), b.edges(), "different seeds should give different graphs");
}

#[test]
fn pagerank_bit_identical_across_partition_counts() {
    // The delta formulation pushes per-partition contribution maps to the
    // PS; the fold into `ranks` must not depend on how the edge list was
    // split. Compare 2 vs 8 partitions down to the bit pattern.
    let g = gen::rmat(64, 400, Default::default(), 7).dedup();
    let run = |parts: usize| {
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, &g, parts).unwrap();
        PageRank { max_iterations: 20, ..Default::default() }
            .run(&ctx, &edges, g.num_vertices())
            .unwrap()
            .ranks
    };
    let r2 = run(2);
    let r8 = run(8);
    assert_eq!(r2.len(), r8.len());
    for (v, (a, b)) in r2.iter().zip(&r8).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "vertex {v}: {a} (2 parts) vs {b} (8 parts)"
        );
    }
}

#[test]
fn pagerank_same_run_twice_is_bit_identical() {
    let g = gen::rmat(64, 400, Default::default(), 9).dedup();
    let run = || {
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, &g, 4).unwrap();
        PageRank { max_iterations: 20, ..Default::default() }
            .run(&ctx, &edges, g.num_vertices())
            .unwrap()
            .ranks
    };
    let a = run();
    let b = run();
    for (v, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "vertex {v}: {x} vs {y}");
    }
}
