//! Failure-injection integration tests across the whole stack: executor
//! kills (lineage reload), PS server kills (checkpoint restore), datanode
//! kills (DFS replication), and combinations — results must always match
//! the failure-free run.

use psgraph::core::algos::{CommonNeighbor, KCore, PageRank};
use psgraph::core::runner::distribute_edges;
use psgraph::core::PsGraphContext;
use psgraph::graph::{gen, metrics};
use psgraph::sim::{FailPlan, SimTime};

#[test]
fn executor_and_server_failures_in_one_run() {
    let g = gen::rmat(120, 900, Default::default(), 211).dedup();
    let ctx = PsGraphContext::local();
    let edges = distribute_edges(&ctx, &g, 8).unwrap();
    // Kill an executor at superstep 2 and a PS server at superstep 4.
    // Small batches force enough supersteps for both kills to fire.
    ctx.cluster().injector().schedule(FailPlan::kill_executor(2, 2));
    ctx.ps().injector().schedule(FailPlan::kill_server(1, 4));
    let out = CommonNeighbor { checkpoint: true, batch_size: 8 }
        .run(&ctx, &edges, g.num_vertices())
        .unwrap();
    let queried: Vec<(u64, u64)> = out.counts.iter().map(|&(a, b, _)| (a, b)).collect();
    let exact = metrics::common_neighbors_exact(&g, &queried);
    for ((_, _, c), e) in out.counts.iter().zip(&exact) {
        assert_eq!(c, e, "counts must survive both failures");
    }
    assert!(ctx.now() >= ctx.cost().restart_overhead());
}

#[test]
fn repeated_executor_failures() {
    let g = gen::rmat(100, 700, Default::default(), 223).dedup();
    let ctx = PsGraphContext::local();
    let edges = distribute_edges(&ctx, &g, 8).unwrap();
    // Three kills across the run, different executors.
    for (e, step) in [(0usize, 2u64), (1, 5), (3, 9)] {
        ctx.cluster().injector().schedule(FailPlan::kill_executor(e, step));
    }
    let out = KCore::default().run(&ctx, &edges, g.num_vertices()).unwrap();
    assert_eq!(out.coreness, metrics::kcore_exact(&g));
}

#[test]
fn consistent_recovery_rolls_pagerank_back_correctly() {
    let g = gen::rmat(80, 500, Default::default(), 227).dedup();

    let run = |kill: bool| {
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, &g, 8).unwrap();
        if kill {
            ctx.ps().injector().schedule(FailPlan::kill_server(0, 6));
        }
        (
            PageRank { max_iterations: 25, checkpoint_every: 2, ..Default::default() }
                .run(&ctx, &edges, g.num_vertices())
                .unwrap(),
            ctx.now(),
        )
    };
    let (clean, t_clean) = run(false);
    let (failed, t_failed) = run(true);
    for (v, (a, b)) in clean.ranks.iter().zip(&failed.ranks).enumerate() {
        assert!((a - b).abs() < 1e-3, "vertex {v}: {a} vs {b}");
    }
    assert!(t_failed > t_clean, "recovery must cost simulated time");
}

#[test]
fn dfs_survives_datanode_loss_under_checkpointing() {
    let g = gen::rmat(80, 500, Default::default(), 229).dedup();
    let ctx = PsGraphContext::local();
    let edges = distribute_edges(&ctx, &g, 8).unwrap();
    // Write checkpoints, lose a datanode, then force a server recovery
    // that must read the checkpoint from the surviving replicas.
    ctx.ps().injector().schedule(FailPlan::kill_server(1, 3));
    ctx.dfs().kill_datanode(0).unwrap();
    let out = CommonNeighbor { checkpoint: true, batch_size: 8 }
        .run(&ctx, &edges, g.num_vertices())
        .unwrap();
    assert!(!out.counts.is_empty());
}

#[test]
fn unrecoverable_when_checkpoint_missing() {
    // A server dies but nothing was ever checkpointed: the master cannot
    // restore, and the job must surface a clean error (not wrong data).
    let g = gen::rmat(60, 300, Default::default(), 233).dedup();
    let ctx = PsGraphContext::local();
    let edges = distribute_edges(&ctx, &g, 8).unwrap();
    ctx.ps().injector().schedule(FailPlan::kill_server(0, 1));
    let err = CommonNeighbor { checkpoint: false, batch_size: 8 }
        .run(&ctx, &edges, g.num_vertices())
        .unwrap_err();
    assert!(
        err.to_string().contains("checkpoint"),
        "expected a no-checkpoint error, got: {err}"
    );
}

#[test]
fn failure_free_runs_are_reproducible() {
    let g = gen::rmat(100, 800, Default::default(), 239).dedup();
    let run = || {
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, &g, 8).unwrap();
        let out = PageRank { max_iterations: 15, ..Default::default() }
            .run(&ctx, &edges, g.num_vertices())
            .unwrap();
        (out.ranks, out.stats.elapsed)
    };
    let (r1, t1) = run();
    let (r2, t2) = run();
    // Ranks agree to float-accumulation noise: executors push their
    // updates to the PS concurrently, so server-side summation order can
    // differ in the last ULP between runs. Everything else is seeded.
    for (v, (a, b)) in r1.iter().zip(&r2).enumerate() {
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "vertex {v}: {a} vs {b}");
    }
    // Simulated time is *near*-deterministic: per-node costs are exact,
    // but PS-port queueing order also depends on thread interleaving.
    let ratio = t1.as_secs_f64() / t2.as_secs_f64();
    assert!((0.9..1.1).contains(&ratio), "elapsed {t1} vs {t2}");
    assert!(t1 > SimTime::ZERO);
}
