//! Property-based tests over the whole stack: for randomly generated
//! graphs and access patterns, the distributed implementations must agree
//! with the exact single-machine references, and core invariants must
//! hold.
//!
//! Built on the in-tree `psgraph_harness::prop` framework (hermetic — no
//! external crates). Each property is reproducible: failures print a
//! `PSGRAPH_PROP_SEED=...` replay line.

use psgraph_harness::prop::{check_with, Config, Source};
use psgraph_harness::{prop_assert, prop_assert_eq};

use psgraph::core::algos::{KCore, PageRank, TriangleCount};
use psgraph::core::runner::distribute_edges;
use psgraph::core::PsGraphContext;
use psgraph::graph::{metrics, EdgeList};
use psgraph::ps::{PartitionLayout, Partitioner, RecoveryMode, VectorHandle};
use psgraph::sim::NodeClock;

/// Generator: a random small graph as a deduplicated edge list.
fn arb_graph(src: &mut Source) -> EdgeList {
    let n = src.u64_range(8, 60);
    let edges = src.vec_with(1, 200, |s| (s.u64_range(0, n), s.u64_range(0, n)));
    EdgeList::new(n, edges).dedup()
}

// ---------------------------------------------------------------------------
// Cross-stack parity block (12 cases each, matching the original suite).
// ---------------------------------------------------------------------------

const PARITY_CASES: u32 = 12;

#[test]
fn kcore_matches_exact_reference() {
    check_with(
        "kcore_matches_exact_reference",
        &Config::with_cases(PARITY_CASES),
        arb_graph,
        |g| {
            let ctx = PsGraphContext::local();
            let edges = distribute_edges(&ctx, g, 4).unwrap();
            let out = KCore::default().run(&ctx, &edges, g.num_vertices()).unwrap();
            prop_assert_eq!(out.coreness, metrics::kcore_exact(g));
            Ok(())
        },
    );
}

#[test]
fn triangles_match_exact_reference() {
    check_with(
        "triangles_match_exact_reference",
        &Config::with_cases(PARITY_CASES),
        arb_graph,
        |g| {
            let ctx = PsGraphContext::local();
            let edges = distribute_edges(&ctx, g, 4).unwrap();
            let out = TriangleCount::default().run(&ctx, &edges, g.num_vertices()).unwrap();
            prop_assert_eq!(out.triangles, metrics::triangles_exact(g));
            Ok(())
        },
    );
}

#[test]
fn pagerank_mass_and_positivity() {
    check_with(
        "pagerank_mass_and_positivity",
        &Config::with_cases(PARITY_CASES),
        arb_graph,
        |g| {
            let ctx = PsGraphContext::local();
            let edges = distribute_edges(&ctx, g, 4).unwrap();
            let out = PageRank { max_iterations: 25, ..Default::default() }
                .run(&ctx, &edges, g.num_vertices())
                .unwrap();
            // Every rank ≥ the teleport mass (1-d); none NaN/∞.
            for (v, &r) in out.ranks.iter().enumerate() {
                prop_assert!(r.is_finite(), "vertex {} rank {}", v, r);
                prop_assert!(r >= 0.15 - 1e-9, "vertex {} rank {}", v, r);
            }
            Ok(())
        },
    );
}

#[test]
fn ps_vector_pull_matches_reference_model() {
    check_with(
        "ps_vector_pull_matches_reference_model",
        &Config::with_cases(PARITY_CASES),
        |src| {
            let size = src.u64_range(1, 200);
            let ops = src.vec_with(0, 60, |s| {
                (s.u64_range(0, 200), s.i64_range(-100, 100), s.bool())
            });
            (size, ops, src.bool())
        },
        |(size, ops, hash_partitioned)| {
            let (size, hash_partitioned) = (*size, *hash_partitioned);
            // Random interleaving of adds/sets mirrored against a Vec model.
            let ctx = PsGraphContext::local();
            let clock = NodeClock::new();
            let partitioner =
                if hash_partitioned { Partitioner::Hash } else { Partitioner::Range };
            let v = VectorHandle::<i64>::create(
                ctx.ps(),
                "prop.v",
                size,
                partitioner,
                RecoveryMode::Inconsistent,
            )
            .unwrap();
            let mut model = vec![0i64; size as usize];
            for &(idx, val, is_add) in ops {
                let idx = idx % size;
                if is_add {
                    v.push_add(&clock, &[idx], &[val]).unwrap();
                    model[idx as usize] = model[idx as usize].saturating_add(val);
                } else {
                    v.push_set(&clock, &[idx], &[val]).unwrap();
                    model[idx as usize] = val;
                }
            }
            let all = v.pull_all(&clock).unwrap();
            prop_assert_eq!(all, model.clone());
            // Sparse pull agrees with plain pull.
            let idx: Vec<u64> = (0..size).collect();
            prop_assert_eq!(v.pull_sparse(&clock, &idx).unwrap(), model);
            ctx.ps().unregister("prop.v");
            Ok(())
        },
    );
}

#[test]
fn partition_layout_covers_all_keys() {
    check_with(
        "partition_layout_covers_all_keys",
        &Config::with_cases(PARITY_CASES),
        |src| {
            (
                src.u64_range(1, 5_000),
                src.usize_range(1, 12),
                src.usize_range(1, 6),
                src.usize_range(0, 3),
            )
        },
        |&(size, parts, servers, which)| {
            let partitioner = match which {
                0 => Partitioner::Hash,
                1 => Partitioner::Range,
                _ => Partitioner::HashRange { buckets: 1 },
            };
            let layout = PartitionLayout::new(partitioner, size, parts, servers);
            for k in (0..size).step_by(1 + size as usize / 257) {
                let p = layout.partition_of(k);
                prop_assert!(p < parts);
                prop_assert!(layout.server_of_partition(p) < servers);
            }
            Ok(())
        },
    );
}

#[test]
fn rdd_wordcount_matches_reference() {
    check_with(
        "rdd_wordcount_matches_reference",
        &Config::with_cases(PARITY_CASES),
        |src| {
            (
                src.vec_with(0, 300, |s| s.u64_range(0, 20)),
                src.usize_range(1, 10),
                src.usize_range(1, 10),
            )
        },
        |(words, parts, out_parts)| {
            let ctx = PsGraphContext::local();
            let rdd =
                psgraph::dataflow::Rdd::from_vec(ctx.cluster(), words.clone(), *parts).unwrap();
            let keyed = rdd.map(|&w| (w, 1u64)).unwrap();
            let mut counted =
                keyed.reduce_by_key(*out_parts, |a, b| a + b).unwrap().collect().unwrap();
            counted.sort_unstable();
            let mut reference: std::collections::BTreeMap<u64, u64> = Default::default();
            for &w in words {
                *reference.entry(w).or_default() += 1;
            }
            let reference: Vec<(u64, u64)> = reference.into_iter().collect();
            prop_assert_eq!(counted, reference);
            Ok(())
        },
    );
}

#[test]
fn graphsage_sampling_is_valid() {
    check_with(
        "graphsage_sampling_is_valid",
        &Config::with_cases(PARITY_CASES),
        |src| (arb_graph(src), src.usize_range(1, 8), src.any_u64()),
        |(g, k, seed)| {
            use psgraph::ps::NeighborTableHandle;
            let (k, seed) = (*k, *seed);
            let ctx = PsGraphContext::local();
            let clock = NodeClock::new();
            let adj = NeighborTableHandle::create(
                ctx.ps(),
                "prop.adj",
                g.num_vertices(),
                Partitioner::Hash,
                RecoveryMode::Inconsistent,
            )
            .unwrap();
            let tables: Vec<(u64, Vec<u64>)> = g.neighbor_tables().into_iter().collect();
            adj.push(&clock, &tables).unwrap();
            let ids: Vec<u64> = (0..g.num_vertices()).collect();
            let samples = adj.sample_neighbors(&clock, &ids, k, seed).unwrap();
            let full = adj.pull(&clock, &ids).unwrap();
            for (v, (sample, ns)) in samples.iter().zip(&full).enumerate() {
                prop_assert!(sample.len() <= k);
                prop_assert!(sample.len() <= ns.len());
                if ns.len() <= k {
                    prop_assert_eq!(sample.len(), ns.len(), "small lists whole");
                }
                let set: std::collections::HashSet<u64> = sample.iter().copied().collect();
                prop_assert_eq!(set.len(), sample.len(), "no duplicates for {}", v);
                for s in sample {
                    prop_assert!(ns.contains(s));
                }
            }
            ctx.ps().unregister("prop.adj");
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------------
// Failure-injection block (6 cases each — these run the slow recovery
// paths, matching the original suite's reduced budget).
// ---------------------------------------------------------------------------

const FAILURE_CASES: u32 = 6;

#[test]
fn executor_failure_never_changes_kcore() {
    check_with(
        "executor_failure_never_changes_kcore",
        &Config::with_cases(FAILURE_CASES),
        |src| (arb_graph(src), src.usize_range(0, 4), src.u64_range(1, 6)),
        |(g, victim, step)| {
            let ctx = PsGraphContext::local();
            let edges = distribute_edges(&ctx, g, 8).unwrap();
            ctx.cluster()
                .injector()
                .schedule(psgraph::sim::FailPlan::kill_executor(*victim, *step));
            let out = KCore::default().run(&ctx, &edges, g.num_vertices()).unwrap();
            prop_assert_eq!(out.coreness, metrics::kcore_exact(g));
            Ok(())
        },
    );
}

#[test]
fn checkpoint_roundtrip_preserves_everything() {
    check_with(
        "checkpoint_roundtrip_preserves_everything",
        &Config::with_cases(FAILURE_CASES),
        |src| {
            (src.u64_range(1, 300), src.vec_with(1, 50, |s| s.f64_range(-1e6, 1e6)))
        },
        |(size, values)| {
            let size = *size;
            let ctx = PsGraphContext::local();
            let clock = NodeClock::new();
            let v = VectorHandle::<f64>::create(
                ctx.ps(),
                "prop.ck",
                size,
                Partitioner::Range,
                RecoveryMode::Inconsistent,
            )
            .unwrap();
            let idx: Vec<u64> =
                values.iter().enumerate().map(|(i, _)| i as u64 % size).collect();
            v.push_add(&clock, &idx, values).unwrap();
            let before = v.pull_all(&clock).unwrap();
            ctx.ps().checkpoint(ctx.dfs(), "prop.ck").unwrap();
            for s in 0..ctx.ps().num_servers() {
                ctx.ps().kill_server(s);
                ctx.ps().restart_server(s, clock.now());
                ctx.ps().recover_server(s, ctx.dfs(), &clock).unwrap();
            }
            prop_assert_eq!(v.pull_all(&clock).unwrap(), before);
            ctx.ps().unregister("prop.ck");
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------------
// Dataflow semantics block (10 cases each, matching the original suite).
// ---------------------------------------------------------------------------

const DATAFLOW_CASES: u32 = 10;

fn arb_pairs(src: &mut Source, max_len: usize) -> Vec<(u64, u64)> {
    src.vec_with(0, max_len, |s| (s.u64_range(0, 15), s.u64_range(0, 100)))
}

#[test]
fn join_matches_reference_semantics() {
    check_with(
        "join_matches_reference_semantics",
        &Config::with_cases(DATAFLOW_CASES),
        |src| (arb_pairs(src, 80), arb_pairs(src, 80), src.usize_range(1, 8)),
        |(left, right, parts)| {
            let ctx = PsGraphContext::local();
            let l =
                psgraph::dataflow::Rdd::from_vec(ctx.cluster(), left.clone(), *parts).unwrap();
            let r =
                psgraph::dataflow::Rdd::from_vec(ctx.cluster(), right.clone(), *parts).unwrap();
            let mut joined = l.join(&r, *parts).unwrap().collect().unwrap();
            joined.sort_unstable();
            let mut reference = Vec::new();
            for &(lk, lv) in left {
                for &(rk, rv) in right {
                    if lk == rk {
                        reference.push((lk, (lv, rv)));
                    }
                }
            }
            reference.sort_unstable();
            prop_assert_eq!(joined, reference);
            Ok(())
        },
    );
}

#[test]
fn group_by_key_with_matches_group_then_post() {
    check_with(
        "group_by_key_with_matches_group_then_post",
        &Config::with_cases(DATAFLOW_CASES),
        |src| {
            (
                src.vec_with(0, 100, |s| (s.u64_range(0, 12), s.u64_range(0, 50))),
                src.usize_range(1, 8),
            )
        },
        |(pairs, parts)| {
            let ctx = PsGraphContext::local();
            let rdd =
                psgraph::dataflow::Rdd::from_vec(ctx.cluster(), pairs.clone(), *parts).unwrap();
            let mut fused = rdd
                .group_by_key_with(*parts, |_k, vs| {
                    vs.sort_unstable();
                    vs.dedup();
                })
                .unwrap()
                .collect()
                .unwrap();
            fused.sort_by_key(|(k, _)| *k);
            let mut reference: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
            for &(k, v) in pairs {
                reference.entry(k).or_default().push(v);
            }
            let reference: Vec<(u64, Vec<u64>)> = reference
                .into_iter()
                .map(|(k, mut vs)| {
                    vs.sort_unstable();
                    vs.dedup();
                    (k, vs)
                })
                .collect();
            prop_assert_eq!(fused, reference);
            Ok(())
        },
    );
}

#[test]
fn fused_flat_map_reduce_matches_unfused() {
    check_with(
        "fused_flat_map_reduce_matches_unfused",
        &Config::with_cases(DATAFLOW_CASES),
        |src| {
            (src.vec_with(0, 120, |s| s.u64_range(0, 40)), src.usize_range(1, 8))
        },
        |(items, parts)| {
            let ctx = PsGraphContext::local();
            let rdd =
                psgraph::dataflow::Rdd::from_vec(ctx.cluster(), items.clone(), *parts).unwrap();
            // Fused: each item emits (x % 7, x) and (x % 5, 1).
            let mut fused = rdd
                .flat_map_reduce_by_key(
                    *parts,
                    |&x, out| {
                        out.push((x % 7, x));
                        out.push((x % 5, 1));
                    },
                    |a, b| a + b,
                )
                .unwrap()
                .collect()
                .unwrap();
            fused.sort_unstable();
            // Unfused equivalent through materialized ops.
            let mut unfused = rdd
                .flat_map(|&x| vec![(x % 7, x), (x % 5, 1)])
                .unwrap()
                .reduce_by_key(*parts, |a, b| a + b)
                .unwrap()
                .collect()
                .unwrap();
            unfused.sort_unstable();
            prop_assert_eq!(fused, unfused);
            Ok(())
        },
    );
}

#[test]
fn copartitioned_join_matches_plain_join() {
    check_with(
        "copartitioned_join_matches_plain_join",
        &Config::with_cases(DATAFLOW_CASES),
        |src| (arb_pairs(src, 60), arb_pairs(src, 60), src.usize_range(1, 8)),
        |(left, right, parts)| {
            let ctx = PsGraphContext::local();
            let l =
                psgraph::dataflow::Rdd::from_vec(ctx.cluster(), left.clone(), *parts).unwrap();
            let r =
                psgraph::dataflow::Rdd::from_vec(ctx.cluster(), right.clone(), *parts).unwrap();
            let mut plain = l.join(&r, *parts).unwrap().collect().unwrap();
            plain.sort_unstable();
            let lp = l.partition_by_key(*parts).unwrap();
            let rp = r.partition_by_key(*parts).unwrap();
            let mut copart = lp.join_copartitioned(&rp).unwrap().collect().unwrap();
            copart.sort_unstable();
            prop_assert_eq!(plain, copart);
            Ok(())
        },
    );
}

#[test]
fn connected_components_match_reference() {
    check_with(
        "connected_components_match_reference",
        &Config::with_cases(DATAFLOW_CASES),
        arb_graph,
        |g| {
            use psgraph::core::algos::ConnectedComponents;
            let ctx = PsGraphContext::local();
            let edges = distribute_edges(&ctx, g, 4).unwrap();
            let out =
                ConnectedComponents::default().run(&ctx, &edges, g.num_vertices()).unwrap();
            let reference = metrics::connected_components(&g);
            for a in 0..g.num_vertices() as usize {
                for b in 0..g.num_vertices() as usize {
                    prop_assert_eq!(
                        out.labels[a] == out.labels[b],
                        reference[a] == reference[b]
                    );
                }
            }
            Ok(())
        },
    );
}
