//! Property-based tests over the whole stack: for randomly generated
//! graphs and access patterns, the distributed implementations must agree
//! with the exact single-machine references, and core invariants must
//! hold.

use proptest::prelude::*;
use std::sync::Arc;

use psgraph::core::algos::{KCore, PageRank, TriangleCount};
use psgraph::core::runner::distribute_edges;
use psgraph::core::PsGraphContext;
use psgraph::graph::{metrics, EdgeList};
use psgraph::ps::{Partitioner, PartitionLayout, RecoveryMode, VectorHandle};
use psgraph::sim::NodeClock;

/// Strategy: a random small graph as (n, edge list).
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (8u64..60).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 1..200)
            .prop_map(move |edges| EdgeList::new(n, edges).dedup())
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn kcore_matches_exact_reference(g in arb_graph()) {
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, &g, 4).unwrap();
        let out = KCore::default().run(&ctx, &edges, g.num_vertices()).unwrap();
        prop_assert_eq!(out.coreness, metrics::kcore_exact(&g));
    }

    #[test]
    fn triangles_match_exact_reference(g in arb_graph()) {
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, &g, 4).unwrap();
        let out = TriangleCount::default().run(&ctx, &edges, g.num_vertices()).unwrap();
        prop_assert_eq!(out.triangles, metrics::triangles_exact(&g));
    }

    #[test]
    fn pagerank_mass_and_positivity(g in arb_graph()) {
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, &g, 4).unwrap();
        let out = PageRank { max_iterations: 25, ..Default::default() }
            .run(&ctx, &edges, g.num_vertices())
            .unwrap();
        // Every rank ≥ the teleport mass (1-d); none NaN/∞.
        for (v, &r) in out.ranks.iter().enumerate() {
            prop_assert!(r.is_finite(), "vertex {} rank {}", v, r);
            prop_assert!(r >= 0.15 - 1e-9, "vertex {} rank {}", v, r);
        }
    }

    #[test]
    fn ps_vector_pull_matches_reference_model(
        size in 1u64..200,
        ops in proptest::collection::vec((0u64..200, -100i64..100, any::<bool>()), 0..60),
        hash_partitioned in any::<bool>(),
    ) {
        // Random interleaving of adds/sets mirrored against a Vec model.
        let ctx = PsGraphContext::local();
        let clock = NodeClock::new();
        let partitioner = if hash_partitioned { Partitioner::Hash } else { Partitioner::Range };
        let v = VectorHandle::<i64>::create(
            ctx.ps(), "prop.v", size, partitioner, RecoveryMode::Inconsistent,
        ).unwrap();
        let mut model = vec![0i64; size as usize];
        for (idx, val, is_add) in ops {
            let idx = idx % size;
            if is_add {
                v.push_add(&clock, &[idx], &[val]).unwrap();
                model[idx as usize] = model[idx as usize].saturating_add(val);
            } else {
                v.push_set(&clock, &[idx], &[val]).unwrap();
                model[idx as usize] = val;
            }
        }
        let all = v.pull_all(&clock).unwrap();
        prop_assert_eq!(all, model.clone());
        // Sparse pull agrees with plain pull.
        let idx: Vec<u64> = (0..size).collect();
        prop_assert_eq!(v.pull_sparse(&clock, &idx).unwrap(), model);
        ctx.ps().unregister("prop.v");
    }

    #[test]
    fn partition_layout_covers_all_keys(
        size in 1u64..5_000,
        parts in 1usize..12,
        servers in 1usize..6,
        which in 0usize..3,
    ) {
        let partitioner = match which {
            0 => Partitioner::Hash,
            1 => Partitioner::Range,
            _ => Partitioner::HashRange { buckets: 1 },
        };
        let layout = PartitionLayout::new(partitioner, size, parts, servers);
        for k in (0..size).step_by(1 + size as usize / 257) {
            let p = layout.partition_of(k);
            prop_assert!(p < parts);
            prop_assert!(layout.server_of_partition(p) < servers);
        }
    }

    #[test]
    fn rdd_wordcount_matches_reference(
        words in proptest::collection::vec(0u64..20, 0..300),
        parts in 1usize..10,
        out_parts in 1usize..10,
    ) {
        let ctx = PsGraphContext::local();
        let rdd = psgraph::dataflow::Rdd::from_vec(
            ctx.cluster(), words.clone(), parts,
        ).unwrap();
        let keyed = rdd.map(|&w| (w, 1u64)).unwrap();
        let mut counted = keyed.reduce_by_key(out_parts, |a, b| a + b).unwrap()
            .collect().unwrap();
        counted.sort_unstable();
        let mut reference: std::collections::BTreeMap<u64, u64> = Default::default();
        for w in words {
            *reference.entry(w).or_default() += 1;
        }
        let reference: Vec<(u64, u64)> = reference.into_iter().collect();
        prop_assert_eq!(counted, reference);
    }

    #[test]
    fn graphsage_sampling_is_valid(
        g in arb_graph(),
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        use psgraph::ps::NeighborTableHandle;
        let ctx = PsGraphContext::local();
        let clock = NodeClock::new();
        let adj = NeighborTableHandle::create(
            ctx.ps(), "prop.adj", g.num_vertices(), Partitioner::Hash,
            RecoveryMode::Inconsistent,
        ).unwrap();
        let tables: Vec<(u64, Vec<u64>)> = g.neighbor_tables().into_iter().collect();
        adj.push(&clock, &tables).unwrap();
        let ids: Vec<u64> = (0..g.num_vertices()).collect();
        let samples = adj.sample_neighbors(&clock, &ids, k, seed).unwrap();
        let full = adj.pull(&clock, &ids).unwrap();
        for (v, (sample, ns)) in samples.iter().zip(&full).enumerate() {
            prop_assert!(sample.len() <= k);
            prop_assert!(sample.len() <= ns.len());
            if ns.len() <= k {
                prop_assert_eq!(sample.len(), ns.len(), "small lists whole");
            }
            let set: std::collections::HashSet<u64> = sample.iter().copied().collect();
            prop_assert_eq!(set.len(), sample.len(), "no duplicates for {}", v);
            for s in sample {
                prop_assert!(ns.contains(s));
            }
        }
        ctx.ps().unregister("prop.adj");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn executor_failure_never_changes_kcore(
        g in arb_graph(),
        victim in 0usize..4,
        step in 1u64..6,
    ) {
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, &g, 8).unwrap();
        ctx.cluster()
            .injector()
            .schedule(psgraph::sim::FailPlan::kill_executor(victim, step));
        let out = KCore::default().run(&ctx, &edges, g.num_vertices()).unwrap();
        prop_assert_eq!(out.coreness, metrics::kcore_exact(&g));
    }

    #[test]
    fn checkpoint_roundtrip_preserves_everything(
        size in 1u64..300,
        values in proptest::collection::vec(-1e6f64..1e6, 1..50),
    ) {
        let ctx = PsGraphContext::local();
        let clock = NodeClock::new();
        let v = VectorHandle::<f64>::create(
            ctx.ps(), "prop.ck", size, Partitioner::Range, RecoveryMode::Inconsistent,
        ).unwrap();
        let idx: Vec<u64> = values.iter().enumerate()
            .map(|(i, _)| i as u64 % size).collect();
        v.push_add(&clock, &idx, &values).unwrap();
        let before = v.pull_all(&clock).unwrap();
        ctx.ps().checkpoint(ctx.dfs(), "prop.ck").unwrap();
        for s in 0..ctx.ps().num_servers() {
            ctx.ps().kill_server(s);
            ctx.ps().restart_server(s, clock.now());
            ctx.ps().recover_server(s, ctx.dfs(), &clock).unwrap();
        }
        prop_assert_eq!(v.pull_all(&clock).unwrap(), before);
        ctx.ps().unregister("prop.ck");
    }
}

// The proptest crate needs `Arc` imported for some generated code paths in
// this module's helpers.
#[allow(dead_code)]
fn _keep_imports(_: Arc<()>) {}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn join_matches_reference_semantics(
        left in proptest::collection::vec((0u64..15, 0u64..100), 0..80),
        right in proptest::collection::vec((0u64..15, 0u64..100), 0..80),
        parts in 1usize..8,
    ) {
        let ctx = PsGraphContext::local();
        let l = psgraph::dataflow::Rdd::from_vec(ctx.cluster(), left.clone(), parts).unwrap();
        let r = psgraph::dataflow::Rdd::from_vec(ctx.cluster(), right.clone(), parts).unwrap();
        let mut joined = l.join(&r, parts).unwrap().collect().unwrap();
        joined.sort_unstable();
        let mut reference = Vec::new();
        for &(lk, lv) in &left {
            for &(rk, rv) in &right {
                if lk == rk {
                    reference.push((lk, (lv, rv)));
                }
            }
        }
        reference.sort_unstable();
        prop_assert_eq!(joined, reference);
    }

    #[test]
    fn group_by_key_with_matches_group_then_post(
        pairs in proptest::collection::vec((0u64..12, 0u64..50), 0..100),
        parts in 1usize..8,
    ) {
        let ctx = PsGraphContext::local();
        let rdd = psgraph::dataflow::Rdd::from_vec(ctx.cluster(), pairs.clone(), parts).unwrap();
        let mut fused = rdd
            .group_by_key_with(parts, |_k, vs| {
                vs.sort_unstable();
                vs.dedup();
            })
            .unwrap()
            .collect()
            .unwrap();
        fused.sort_by_key(|(k, _)| *k);
        let mut reference: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
        for (k, v) in pairs {
            reference.entry(k).or_default().push(v);
        }
        let reference: Vec<(u64, Vec<u64>)> = reference
            .into_iter()
            .map(|(k, mut vs)| {
                vs.sort_unstable();
                vs.dedup();
                (k, vs)
            })
            .collect();
        prop_assert_eq!(fused, reference);
    }

    #[test]
    fn fused_flat_map_reduce_matches_unfused(
        items in proptest::collection::vec(0u64..40, 0..120),
        parts in 1usize..8,
    ) {
        let ctx = PsGraphContext::local();
        let rdd = psgraph::dataflow::Rdd::from_vec(ctx.cluster(), items.clone(), parts).unwrap();
        // Fused: each item emits (x % 7, x) and (x % 5, 1).
        let mut fused = rdd
            .flat_map_reduce_by_key(
                parts,
                |&x, out| {
                    out.push((x % 7, x));
                    out.push((x % 5, 1));
                },
                |a, b| a + b,
            )
            .unwrap()
            .collect()
            .unwrap();
        fused.sort_unstable();
        // Unfused equivalent through materialized ops.
        let mut unfused = rdd
            .flat_map(|&x| vec![(x % 7, x), (x % 5, 1)])
            .unwrap()
            .reduce_by_key(parts, |a, b| a + b)
            .unwrap()
            .collect()
            .unwrap();
        unfused.sort_unstable();
        prop_assert_eq!(fused, unfused);
    }

    #[test]
    fn copartitioned_join_matches_plain_join(
        left in proptest::collection::vec((0u64..15, 0u64..100), 0..60),
        right in proptest::collection::vec((0u64..15, 0u64..100), 0..60),
        parts in 1usize..8,
    ) {
        let ctx = PsGraphContext::local();
        let l = psgraph::dataflow::Rdd::from_vec(ctx.cluster(), left, parts).unwrap();
        let r = psgraph::dataflow::Rdd::from_vec(ctx.cluster(), right, parts).unwrap();
        let mut plain = l.join(&r, parts).unwrap().collect().unwrap();
        plain.sort_unstable();
        let lp = l.partition_by_key(parts).unwrap();
        let rp = r.partition_by_key(parts).unwrap();
        let mut copart = lp.join_copartitioned(&rp).unwrap().collect().unwrap();
        copart.sort_unstable();
        prop_assert_eq!(plain, copart);
    }

    #[test]
    fn connected_components_match_reference(g in arb_graph()) {
        use psgraph::core::algos::ConnectedComponents;
        let ctx = PsGraphContext::local();
        let edges = distribute_edges(&ctx, &g, 4).unwrap();
        let out = ConnectedComponents::default()
            .run(&ctx, &edges, g.num_vertices())
            .unwrap();
        let reference = metrics::connected_components(&g);
        for a in 0..g.num_vertices() as usize {
            for b in 0..g.num_vertices() as usize {
                prop_assert_eq!(
                    out.labels[a] == out.labels[b],
                    reference[a] == reference[b]
                );
            }
        }
    }
}
