//! PSGraph and the GraphX baseline implement the same mathematics on very
//! different substrates — their outputs must agree.

use psgraph::core::algos::{CommonNeighbor, KCore, PageRank, TriangleCount};
use psgraph::core::runner::distribute_edges;
use psgraph::core::PsGraphContext;
use psgraph::dataflow::Cluster;
use psgraph::graph::{gen, EdgeList};
use psgraph::graphx::{gx_common_neighbor, gx_kcore, gx_pagerank, gx_triangle_count, GxGraph};
use psgraph::sim::FxHashMap;

fn test_graph(seed: u64) -> EdgeList {
    gen::rmat(150, 1_200, Default::default(), seed).dedup()
}

#[test]
fn pagerank_parity() {
    let g = test_graph(101);
    // Dangling-free closure so both formulations agree exactly.
    let n = g.num_vertices();
    let mut edges = g.edges().to_vec();
    for v in 0..n {
        edges.push((v, (v + 1) % n));
    }
    let g = EdgeList::new(n, edges).dedup();

    let ctx = PsGraphContext::local();
    let rdd = distribute_edges(&ctx, &g, 8).unwrap();
    // Run both to (near) convergence: the delta formulation carries a
    // geometric residual tail, so compare converged fixed points.
    let ps = PageRank { max_iterations: 120, ..Default::default() }
        .run(&ctx, &rdd, n)
        .unwrap();

    let c = Cluster::local();
    let gx = GxGraph::from_edgelist(&c, &g, 8).unwrap();
    let gx_ranks = gx_pagerank(&gx, 0.85, 120).unwrap();

    for (v, &(gv, gr)) in gx_ranks.iter().enumerate() {
        assert_eq!(gv, v as u64);
        assert!(
            (ps.ranks[v] - gr).abs() < 1e-6 * gr.max(1.0),
            "vertex {v}: psgraph {} vs graphx {gr}",
            ps.ranks[v]
        );
    }
}

#[test]
fn kcore_parity() {
    let g = test_graph(103);
    let ctx = PsGraphContext::local();
    let rdd = distribute_edges(&ctx, &g, 8).unwrap();
    let ps = KCore::default().run(&ctx, &rdd, g.num_vertices()).unwrap();

    let c = Cluster::local();
    let gx = GxGraph::from_edgelist(&c, &g, 8).unwrap();
    let gx_cores = gx_kcore(&gx, 100).unwrap();

    for (v, &(gv, gc)) in gx_cores.iter().enumerate() {
        assert_eq!(gv, v as u64);
        assert_eq!(ps.coreness[v], gc, "vertex {v}");
    }
}

#[test]
fn triangle_parity() {
    let g = test_graph(107);
    let ctx = PsGraphContext::local();
    let rdd = distribute_edges(&ctx, &g, 8).unwrap();
    let ps = TriangleCount::default().run(&ctx, &rdd, g.num_vertices()).unwrap();

    let c = Cluster::local();
    let gx = GxGraph::from_edgelist(&c, &g, 8).unwrap();
    assert_eq!(ps.triangles, gx_triangle_count(&gx).unwrap());
}

#[test]
fn common_neighbor_parity() {
    let g = test_graph(109);
    let ctx = PsGraphContext::local();
    let rdd = distribute_edges(&ctx, &g, 8).unwrap();
    let ps = CommonNeighbor::default().run(&ctx, &rdd, g.num_vertices()).unwrap();

    let c = Cluster::local();
    let gx = GxGraph::from_edgelist(&c, &g, 8).unwrap();
    let gx_counts = gx_common_neighbor(&gx).unwrap();

    // PSGraph scores the directed input edges; GraphX the canonical
    // undirected ones — compare on canonical pairs.
    let mut ps_map: FxHashMap<(u64, u64), u64> = FxHashMap::default();
    for &(a, b, c) in &ps.counts {
        ps_map.insert((a.min(b), a.max(b)), c);
    }
    assert!(!gx_counts.is_empty());
    for &(a, b, c) in &gx_counts {
        let key = (a.min(b), a.max(b));
        assert_eq!(ps_map.get(&key), Some(&c), "pair {key:?}");
    }
}

#[test]
fn connected_components_parity() {
    use psgraph::core::algos::ConnectedComponents;
    use psgraph::graphx::gx_connected_components;
    let g = test_graph(113);
    let ctx = PsGraphContext::local();
    let rdd = distribute_edges(&ctx, &g, 8).unwrap();
    let ps = ConnectedComponents::default()
        .run(&ctx, &rdd, g.num_vertices())
        .unwrap();

    let c = Cluster::local();
    let gx = GxGraph::from_edgelist(&c, &g, 8).unwrap();
    let gx_cc = gx_connected_components(&gx, 200).unwrap();
    // Both label components by the minimum member id → exact equality.
    assert_eq!(ps.labels, gx_cc);
}
