//! End-to-end pipeline integration: DFS → edge RDD → PS algorithms →
//! DFS output, spanning every substrate crate through the facade.

use std::sync::Arc;

use psgraph::core::algos::{
    CommonNeighbor, FastUnfolding, GraphSage, GraphSageConfig, KCore, Line, LineConfig,
    PageRank, TriangleCount,
};
use psgraph::core::runner;
use psgraph::core::{PsGraphConfig, PsGraphContext};
use psgraph::graph::{gen, io, metrics};
use psgraph::sim::SimTime;

fn ctx() -> Arc<PsGraphContext> {
    PsGraphContext::new(PsGraphConfig::default())
}

#[test]
fn full_pagerank_pipeline_through_dfs() {
    let ctx = ctx();
    let g = gen::rmat(500, 4_000, Default::default(), 11).dedup();
    io::write_binary(ctx.dfs(), "/in/g.bin", &g, ctx.cluster().driver()).unwrap();

    let edges = runner::load_edges(&ctx, "/in/g.bin").unwrap();
    let out = PageRank { max_iterations: 40, ..Default::default() }
        .run(&ctx, &edges, g.num_vertices())
        .unwrap();

    let ranked: Vec<(u64, f64)> =
        out.ranks.iter().enumerate().map(|(v, &r)| (v as u64, r)).collect();
    runner::save_vertex_values(&ctx, "/out/pr.bin", &ranked).unwrap();
    let back = runner::load_vertex_values(&ctx, "/out/pr.bin").unwrap();
    assert_eq!(back, ranked);

    // Ranking order must agree with the exact reference on the top ids.
    let exact = metrics::pagerank_exact(&g, 0.85, 60);
    let top_ours = ranked
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
        .0;
    let top_exact = exact
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0 as u64;
    assert_eq!(top_ours, top_exact, "top-ranked vertex must match");
    assert!(ctx.now() > SimTime::ZERO);
}

#[test]
fn all_traditional_algorithms_one_deployment() {
    // Run the full Fig. 6 algorithm set against ONE shared deployment —
    // PS objects must not collide and memory must be returned.
    let ctx = ctx();
    let g = gen::rmat(200, 1_500, Default::default(), 13).dedup();
    let edges = runner::distribute_edges(&ctx, &g, 8).unwrap();

    let pr = PageRank { max_iterations: 20, ..Default::default() }
        .run(&ctx, &edges, g.num_vertices())
        .unwrap();
    assert_eq!(pr.ranks.len() as u64, g.num_vertices());

    let kc = KCore::default().run(&ctx, &edges, g.num_vertices()).unwrap();
    assert_eq!(kc.coreness, metrics::kcore_exact(&g));

    let tc = TriangleCount::default().run(&ctx, &edges, g.num_vertices()).unwrap();
    assert_eq!(tc.triangles, metrics::triangles_exact(&g));

    let cn = CommonNeighbor::default().run(&ctx, &edges, g.num_vertices()).unwrap();
    let queried: Vec<(u64, u64)> = cn.counts.iter().map(|&(a, b, _)| (a, b)).collect();
    let expect = metrics::common_neighbors_exact(&g, &queried);
    for ((_, _, c), e) in cn.counts.iter().zip(&expect) {
        assert_eq!(c, e);
    }

    let fu = FastUnfolding::default()
        .run_unweighted(&ctx, &edges, g.num_vertices())
        .unwrap();
    assert!(fu.modularity.is_finite());

    // After all runs, the PS holds no leftover registered objects' state
    // beyond what unregister cleaned (every algorithm unregisters).
    assert_eq!(ctx.ps().resident_bytes(), 0, "PS must be clean after jobs");
}

#[test]
fn ge_and_gnn_on_one_deployment() {
    let ctx = ctx();
    let s = gen::sbm2(200, 8.0, 0.6, 8, 1.0, 17);
    let edges = runner::distribute_edges(&ctx, &s.graph, 8).unwrap();

    let line = Line::new(LineConfig { dim: 16, epochs: 3, ..Default::default() })
        .run(&ctx, &edges, 200)
        .unwrap();
    assert_eq!(line.embeddings.len(), 200);
    assert!(line.loss_per_epoch.last().unwrap() < &line.loss_per_epoch[0]);

    let feats = Arc::new(s.features.clone());
    let labels = Arc::new(s.labels.clone());
    let gs = GraphSage::new(GraphSageConfig { feat_dim: 8, epochs: 2, ..Default::default() })
        .run(&ctx, &edges, &feats, &labels, 200)
        .unwrap();
    assert!(gs.test_accuracy > 0.6);
    assert_eq!(ctx.ps().resident_bytes(), 0);
}

#[test]
fn simulated_time_accumulates_across_jobs() {
    let ctx = ctx();
    let g = gen::rmat(100, 600, Default::default(), 19);
    let edges = runner::distribute_edges(&ctx, &g, 4).unwrap();
    let t1 = ctx.now();
    PageRank { max_iterations: 5, ..Default::default() }
        .run(&ctx, &edges, 100)
        .unwrap();
    let t2 = ctx.now();
    assert!(t2 > t1);
    TriangleCount::default().run(&ctx, &edges, 100).unwrap();
    assert!(ctx.now() > t2, "jobs on one context share a timeline");
}
