//! Golden-value tests: the distributed algorithms on a tiny fixture graph
//! whose answers are computed by hand below, not by the in-repo reference
//! implementations. If these fail, either the algorithm or the reference
//! is wrong — the references are cross-checked against the same hand
//! values here too.

use psgraph::core::algos::{CommonNeighbor, KCore, PageRank, TriangleCount};
use psgraph::core::runner::distribute_edges;
use psgraph::core::PsGraphContext;
use psgraph::graph::{metrics, EdgeList};

/// The "bowtie + tail" fixture: two triangles sharing vertex 2, plus a
/// pendant vertex 5.
///
/// ```text
///   0 --- 1        3
///    \   /        / \
///     \ /        /   \
///      2 ------ 4 --- 5
///       \______/
/// ```
///
/// Undirected degrees: 0:2, 1:2, 2:4, 3:2, 4:3, 5:1.
fn bowtie() -> EdgeList {
    EdgeList::new(6, vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (4, 5)])
}

#[test]
fn golden_kcore_on_bowtie() {
    // Hand peel: vertex 5 (degree 1) goes first at k=1; the rest form two
    // edge-joined triangles where every vertex keeps degree ≥ 2, so they
    // all peel at k=2.
    let expected = vec![2, 2, 2, 2, 2, 1];
    let g = bowtie();
    assert_eq!(metrics::kcore_exact(&g), expected, "reference disagrees with hand values");
    let ctx = PsGraphContext::local();
    let edges = distribute_edges(&ctx, &g, 4).unwrap();
    let out = KCore::default().run(&ctx, &edges, g.num_vertices()).unwrap();
    assert_eq!(out.coreness, expected);
}

#[test]
fn golden_triangles_on_bowtie() {
    // Exactly the two triangles drawn above: {0,1,2} and {2,3,4}.
    let g = bowtie();
    assert_eq!(metrics::triangles_exact(&g), 2, "reference disagrees with hand values");
    let ctx = PsGraphContext::local();
    let edges = distribute_edges(&ctx, &g, 4).unwrap();
    let out = TriangleCount::default().run(&ctx, &edges, g.num_vertices()).unwrap();
    assert_eq!(out.triangles, 2);
}

#[test]
fn golden_common_neighbors_on_bowtie() {
    // Per edge (the CN workload queries every edge), by hand:
    //   (0,1): N(0)∩N(1) = {2}        → 1
    //   (1,2): N(1)∩N(2) = {0}        → 1
    //   (2,0): N(2)∩N(0) = {1}        → 1
    //   (2,3): N(2)∩N(3) = {4}        → 1
    //   (3,4): N(3)∩N(4) = {2}        → 1
    //   (4,2): N(4)∩N(2) = {3}        → 1
    //   (4,5): N(5) = {4}, disjoint   → 0
    let g = bowtie();
    let mut expected = vec![
        (0, 1, 1),
        (1, 2, 1),
        (2, 0, 1),
        (2, 3, 1),
        (3, 4, 1),
        (4, 2, 1),
        (4, 5, 0),
    ];
    expected.sort_unstable();
    let pairs: Vec<(u64, u64)> = g.edges().to_vec();
    let ref_counts = metrics::common_neighbors_exact(&g, &pairs);
    let mut ref_triples: Vec<(u64, u64, u64)> =
        pairs.iter().zip(&ref_counts).map(|(&(a, b), &c)| (a, b, c)).collect();
    ref_triples.sort_unstable();
    assert_eq!(ref_triples, expected, "reference disagrees with hand values");

    let ctx = PsGraphContext::local();
    let edges = distribute_edges(&ctx, &g, 4).unwrap();
    let out = CommonNeighbor::default().run(&ctx, &edges, g.num_vertices()).unwrap();
    let mut got = out.counts.clone();
    got.sort_unstable();
    assert_eq!(got, expected);
}

#[test]
fn golden_pagerank_on_directed_cycle() {
    // Directed 6-cycle 0→1→…→5→0. Every vertex has in- and out-degree 1,
    // so the unnormalized damped fixed point is exactly 1.0 per vertex:
    // r = 0.15 + 0.85·r ⇒ r = 1.
    let g = EdgeList::new(6, (0..6u64).map(|v| (v, (v + 1) % 6)).collect());
    let ctx = PsGraphContext::local();
    let edges = distribute_edges(&ctx, &g, 4).unwrap();
    let out = PageRank { max_iterations: 300, ..Default::default() }
        .run(&ctx, &edges, g.num_vertices())
        .unwrap();
    for (v, &r) in out.ranks.iter().enumerate() {
        assert!((r - 1.0).abs() < 1e-6, "vertex {v}: {r}");
    }
    let total: f64 = out.ranks.iter().sum();
    assert!((total - 6.0).abs() < 1e-6, "mass conserved, got {total}");
}

#[test]
fn golden_pagerank_on_bidirectional_star() {
    // Hub 0 ↔ each of 5 leaves. With h the hub rank and l a leaf rank:
    //   h = 0.15 + 0.85·5·l      (each leaf has out-degree 1)
    //   l = 0.15 + 0.85·(h/5)    (hub splits over 5 out-edges)
    // Solving: h = 105/37 ≈ 2.837838, l = 117/185 ≈ 0.632432.
    let mut edges = Vec::new();
    for v in 1..=5u64 {
        edges.push((v, 0));
        edges.push((0, v));
    }
    let g = EdgeList::new(6, edges);
    let ctx = PsGraphContext::local();
    let dist = distribute_edges(&ctx, &g, 4).unwrap();
    let out = PageRank { max_iterations: 300, ..Default::default() }
        .run(&ctx, &dist, g.num_vertices())
        .unwrap();
    let h = 105.0 / 37.0;
    let l = 117.0 / 185.0;
    assert!((out.ranks[0] - h).abs() < 1e-6, "hub {} vs {h}", out.ranks[0]);
    for v in 1..6 {
        assert!((out.ranks[v] - l).abs() < 1e-6, "leaf {v}: {} vs {l}", out.ranks[v]);
    }
}
