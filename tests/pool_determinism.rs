//! Satellite suite for the work-stealing pool: outputs must be
//! *byte-identical* for every pool size and across repeated runs. The
//! engine's rule is that parallel stages combine partial results in
//! canonical partition order, never completion order — these tests pin
//! that rule end-to-end through PageRank and the shuffle machinery.

use std::sync::Arc;

use psgraph::core::algos::PageRank;
use psgraph::core::runner::distribute_edges;
use psgraph::core::{PsGraphConfig, PsGraphContext};
use psgraph::dataflow::{Cluster, ClusterConfig, Rdd};
use psgraph::graph::gen;
use psgraph_harness::Pool;

const POOL_SIZES: [usize; 4] = [1, 2, 4, 8];

fn pagerank_bits(threads: usize) -> Vec<u64> {
    let g = gen::rmat(128, 900, Default::default(), 11).dedup();
    let pool = Arc::new(Pool::with_perturb(threads, None));
    let ctx = PsGraphContext::new(PsGraphConfig::default().with_pool(pool));
    let edges = distribute_edges(&ctx, &g, 8).unwrap();
    PageRank { max_iterations: 15, ..Default::default() }
        .run(&ctx, &edges, g.num_vertices())
        .unwrap()
        .ranks
        .iter()
        .map(|r| r.to_bits())
        .collect()
}

#[test]
fn pagerank_bit_identical_across_pool_sizes() {
    let baseline = pagerank_bits(1);
    assert!(!baseline.is_empty());
    for threads in &POOL_SIZES[1..] {
        assert_eq!(
            pagerank_bits(*threads),
            baseline,
            "ranks diverge on a {threads}-worker pool"
        );
    }
}

#[test]
fn pagerank_repeated_runs_on_one_pool_size_are_bit_identical() {
    // Steal schedules differ between runs even at a fixed pool size; the
    // canonical-order reduction must hide that entirely.
    let first = pagerank_bits(4);
    for _ in 0..2 {
        assert_eq!(pagerank_bits(4), first, "re-run diverged at 4 workers");
    }
}

/// A shuffle whose reduce-side fold is order-sensitive (float addition):
/// identical output requires the reduce side to merge map-side chunks in
/// canonical partition order, not arrival order.
fn shuffle_sums(threads: usize) -> Vec<(u64, u64)> {
    let pool = Arc::new(Pool::with_perturb(threads, None));
    let cluster = Cluster::new(ClusterConfig::default().with_pool(pool));
    let records: Vec<(u64, f64)> =
        (0..4_000u64).map(|i| (i % 97, (i as f64) * 0.1 + 1.0 / (i + 1) as f64)).collect();
    let rdd = Rdd::from_vec(&cluster, records, 8).unwrap();
    let summed = rdd.reduce_by_key(5, |a, b| a + b).unwrap();
    // No sorting: partition order and within-partition order must already
    // be deterministic.
    summed.collect().unwrap().into_iter().map(|(k, v)| (k, v.to_bits())).collect()
}

#[test]
fn shuffle_reduce_bit_identical_across_pool_sizes() {
    let baseline = shuffle_sums(1);
    assert!(!baseline.is_empty());
    for threads in &POOL_SIZES[1..] {
        assert_eq!(
            shuffle_sums(*threads),
            baseline,
            "shuffle output diverges on a {threads}-worker pool"
        );
    }
}

#[test]
fn shuffle_repeated_runs_are_bit_identical() {
    let first = shuffle_sums(8);
    for _ in 0..2 {
        assert_eq!(shuffle_sums(8), first, "re-run diverged at 8 workers");
    }
}

#[test]
fn perturbed_schedules_do_not_change_outputs() {
    // Same pool size, adversarially perturbed steal schedules (seeded
    // yields + randomized victim order) — outputs must not move.
    let run = |perturb: Option<u64>| {
        let g = gen::rmat(96, 600, Default::default(), 5).dedup();
        let pool = Arc::new(Pool::with_perturb(4, perturb));
        let ctx = PsGraphContext::new(PsGraphConfig::default().with_pool(pool));
        let edges = distribute_edges(&ctx, &g, 6).unwrap();
        PageRank { max_iterations: 10, ..Default::default() }
            .run(&ctx, &edges, g.num_vertices())
            .unwrap()
            .ranks
            .iter()
            .map(|r| r.to_bits())
            .collect::<Vec<u64>>()
    };
    let baseline = run(None);
    for seed in [1u64, 7, 42] {
        assert_eq!(run(Some(seed)), baseline, "perturbation seed {seed} changed the ranks");
    }
}
